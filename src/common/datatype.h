/**
 * @file
 * The request-level datatype axis: which storage format the encoded
 * operand value lanes carry, and the quantization function that maps
 * raw FP32 operand values into that lane.
 *
 * The paper's dual-side sparse pipeline never inspects lane width —
 * condensed value arrays, popcount-driven outer products and the
 * merge model are all datatype-agnostic — so one QuantSpec threaded
 * through encode (where values are rounded once) parameterizes the
 * whole stack:
 *
 *  - fp32/fp16/bf16 lanes store the value rounded to the lane's
 *    precision (scale is always 1); products accumulate in FP32,
 *    exactly as the Tensor Core datapath converts-then-accumulates.
 *  - int8/int4 lanes store symmetric-quantized integer *codes*
 *    (rint(v / scale), clamped) with one per-matrix scale
 *    (max|v| / max_code). Codes are small integers, so FP32
 *    accumulation of code products is exact and order-independent up
 *    to 2^24 — the software model of an int32 accumulator — and the
 *    real-valued output is recovered by one deferred per-element
 *    scale_a * scale_b multiply after all accumulation. That is what
 *    makes every quantized path bitwise-deterministic for any worker
 *    count and bitwise-equal across backends.
 *
 * The sparsity pattern is always the *raw* value pattern: a non-zero
 * that quantizes to code 0 keeps its bitmap bit (and stores a zero
 * lane value), so bitmaps, popcount profiles and operand digests are
 * datatype-invariant.
 */
#ifndef DSTC_COMMON_DATATYPE_H
#define DSTC_COMMON_DATATYPE_H

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/fp16.h"

namespace dstc {

/** Operand storage datatype of a kernel request. */
enum class DataType
{
    Fp32, ///< full-precision lanes (no rounding)
    Fp16, ///< IEEE binary16 lanes — the paper's default datapath
    Bf16, ///< bfloat16 lanes (FP32 with a truncated mantissa)
    Int8, ///< symmetric per-matrix int8 codes, int32 accumulation
    Int4, ///< symmetric per-matrix int4 codes, int32 accumulation
};

/** Stable CLI/parse token of a datatype ("fp32", "int8", ...). */
const char *dataTypeToken(DataType dtype);

/** Human-readable datatype name. */
const char *dataTypeName(DataType dtype);

/** Parse a CLI token into a DataType; false on unknown token. */
bool parseDataType(const std::string &token, DataType *out);

/** Storage bits of one encoded operand value. */
constexpr int
dataTypeValueBits(DataType dtype)
{
    switch (dtype) {
      case DataType::Fp32:
        return 32;
      case DataType::Fp16:
      case DataType::Bf16:
        return 16;
      case DataType::Int8:
        return 8;
      case DataType::Int4:
        return 4;
    }
    return 16;
}

/** True for the integer-code datatypes (int8/int4). */
constexpr bool
dataTypeIsInteger(DataType dtype)
{
    return dtype == DataType::Int8 || dtype == DataType::Int4;
}

/** Bytes of one operand value as a real (int4 packs two per byte). */
constexpr double
dataTypeValueBytes(DataType dtype)
{
    return dataTypeValueBits(dtype) / 8.0;
}

/**
 * Bytes of one *output* element written back to DRAM. Floating
 * outputs are written at the operand width (the FP16 default matches
 * the seed model's dense-FP16 write-back); integer outputs are
 * written re-quantized at the operand width (1 byte for int8 and,
 * conservatively, int4 — output codes need the wider range).
 */
constexpr double
dataTypeOutputBytes(DataType dtype)
{
    switch (dtype) {
      case DataType::Fp32:
        return 4.0;
      case DataType::Fp16:
      case DataType::Bf16:
        return 2.0;
      case DataType::Int8:
      case DataType::Int4:
        return 1.0;
    }
    return 2.0;
}

/**
 * Tensor-Core MAC-rate multiplier relative to the FP16 pipe: narrow
 * integer lanes double (int8) or quadruple (int4) the per-cycle MAC
 * throughput, the way Turing/Ampere IMMA paths do. Divides the
 * modeled compute time.
 */
constexpr double
dataTypeComputeScale(DataType dtype)
{
    switch (dtype) {
      case DataType::Fp32:
      case DataType::Fp16:
      case DataType::Bf16:
        return 1.0;
      case DataType::Int8:
        return 2.0;
      case DataType::Int4:
        return 4.0;
    }
    return 1.0;
}

/**
 * Per-MAC energy multiplier relative to the FP16 pipe, in the spirit
 * of the Horowitz ISSCC'14 operation-energy survey: multiplier energy
 * shrinks roughly quadratically with operand width, the FP32
 * accumulate is shared. bf16 is marginally cheaper than fp16 (7-bit
 * multiplier mantissa vs 10). Scales the MAC terms of the energy
 * model; the bitmap/POPC/merge machinery is datatype-agnostic.
 */
constexpr double
dataTypeMacEnergyScale(DataType dtype)
{
    switch (dtype) {
      case DataType::Fp32:
        return 2.2;
      case DataType::Fp16:
        return 1.0;
      case DataType::Bf16:
        return 0.9;
      case DataType::Int8:
        return 0.3;
      case DataType::Int4:
        return 0.15;
    }
    return 1.0;
}

/** Largest symmetric code of an integer datatype (0 for float). */
constexpr int
dataTypeMaxCode(DataType dtype)
{
    switch (dtype) {
      case DataType::Int8:
        return 127;
      case DataType::Int4:
        return 7;
      default:
        return 0;
    }
}

/** Bytes of @p count packed values of @p dtype (int4 nibble-packs). */
constexpr size_t
dataTypePackedBytes(DataType dtype, size_t count)
{
    return (count * static_cast<size_t>(dataTypeValueBits(dtype)) + 7) /
           8;
}

/**
 * Round a float through bfloat16 precision: round-to-nearest-even on
 * the top 16 bits of the FP32 pattern. Inf stays Inf; NaN keeps a
 * mantissa bit so it stays NaN.
 */
inline float
roundToBf16(float value)
{
    uint32_t f = std::bit_cast<uint32_t>(value);
    if ((f & 0x7f800000u) == 0x7f800000u) {
        uint32_t r = f & 0xffff0000u;
        if (f & 0x007fffffu)
            r |= 0x00400000u;
        return std::bit_cast<float>(r);
    }
    const uint32_t rounded = f + 0x7fffu + ((f >> 16) & 1u);
    return std::bit_cast<float>(rounded & 0xffff0000u);
}

/**
 * The quantization applied to one operand's value lane at encode
 * time: a datatype plus (for the integer types) the symmetric
 * per-matrix scale. Default-constructed, it is the seed pipeline's
 * FP16 rounding — every pre-datatype call site keeps its exact
 * bitwise behaviour.
 */
struct QuantSpec
{
    DataType dtype = DataType::Fp16;

    /** Integer code step: lane code = rint(value / scale). Always
     *  1.0 for the floating datatypes. */
    float scale = 1.0f;

    bool integer() const { return dataTypeIsInteger(dtype); }

    /**
     * The lane value of raw operand value @p v: the precision-rounded
     * value for floating datatypes, the (clamped) integer code as a
     * float for int8/int4. apply(0) == 0 for every spec, so the
     * bitmap's zero/non-zero split is unaffected.
     */
    float
    apply(float v) const
    {
        switch (dtype) {
          case DataType::Fp32:
            return v;
          case DataType::Fp16:
            return roundToFp16(v);
          case DataType::Bf16:
            return roundToBf16(v);
          case DataType::Int8:
          case DataType::Int4: {
            const float max_code =
                static_cast<float>(dataTypeMaxCode(dtype));
            float code = std::rint(v / scale);
            if (code > max_code)
                code = max_code;
            if (code < -max_code)
                code = -max_code;
            return code;
          }
        }
        return v;
    }

    /**
     * The per-element factor that maps an accumulated sum of lane
     * products back to real-valued output: scale_a * scale_b for an
     * integer operand pair, exactly 1.0 for floating pairs (whose
     * lanes already hold real values). Applied once, after all
     * accumulation — order-free, so it preserves worker-count and
     * cross-backend bitwise equality.
     */
    static float
    outputScale(const QuantSpec &a, const QuantSpec &b)
    {
        return a.integer() || b.integer() ? a.scale * b.scale : 1.0f;
    }

    /** Spec for a matrix whose largest |value| is @p max_abs. Floating
     *  datatypes ignore it; integer scales map max_abs to the largest
     *  code (scale 1 for an all-zero operand). */
    static QuantSpec
    forMaxAbs(DataType dtype, float max_abs)
    {
        QuantSpec s{dtype, 1.0f};
        if (dataTypeIsInteger(dtype) && max_abs > 0.0f)
            s.scale = max_abs /
                      static_cast<float>(dataTypeMaxCode(dtype));
        return s;
    }

    /** forMaxAbs over a contiguous value range (serial max pass —
     *  max is order-independent, so the scale is deterministic). */
    static QuantSpec forValues(DataType dtype, const float *data,
                               size_t n);

    bool operator==(const QuantSpec &other) const = default;
};

} // namespace dstc

#endif // DSTC_COMMON_DATATYPE_H
