/**
 * @file
 * Flag parsing and validation for the CLI front ends (dstc_sim).
 *
 * The contract is validate-then-read: `validateFlags` checks every
 * flag against the command's vocabulary and value kinds — unknown
 * names, malformed numbers, non-finite values and integers outside
 * int range all *return* errors (printed to stderr) instead of
 * exiting, so the caller owns the exit path and tests can exercise
 * every rejection. After a successful validation the typed accessors
 * (`flagI`, `flagD`, `flagU64`) cannot fail; called on unvalidated
 * input they fall back to the default rather than terminating.
 */
#ifndef DSTC_COMMON_CLI_FLAGS_H
#define DSTC_COMMON_CLI_FLAGS_H

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace dstc {

/** Parsed command line: positionals plus --name[ated] flags. */
struct CliArgs
{
    std::vector<std::string> positional;
    std::vector<std::pair<std::string, std::string>> flags;

    bool hasFlag(const std::string &name) const;

    /** Raw flag value, or @p fallback when absent. */
    std::string flag(const std::string &name,
                     const std::string &fallback) const;

    /** Numeric flag; @p fallback when absent, on malformed input
     *  (pre-validation callers) the parseable prefix like atof. */
    double flagD(const std::string &name, double fallback) const;

    /**
     * Integer flag. Values outside int range return @p fallback —
     * validateFlags has already rejected them for every validated
     * command, so this accessor never terminates the process.
     */
    int flagI(const std::string &name, int fallback) const;

    uint64_t flagU64(const std::string &name,
                     uint64_t fallback) const;

    /**
     * Reject positionals beyond @p max_positionals — stray tokens
     * (including a negative value after a flag, which parseCliArgs
     * refuses to consume) used to be silently ignored.
     */
    bool checkPositionals(const char *command,
                          size_t max_positionals) const;

    /**
     * Validate every flag against the command's vocabulary: reject
     * any name outside @p known and @p global (the caller's
     * always-allowed flags, e.g. dstc_sim's --a100), any @p numeric
     * flag whose value does not parse fully as a finite number, any
     * @p integer flag whose value is not a whole decimal in int
     * range (so "--seed 1e3" cannot silently atoi to 1 and
     * "--hw 99999999999" cannot overflow an accessor), and any
     * @p u64 flag that is not an unsigned decimal. Errors print to
     * stderr and the function returns false — it never exits.
     */
    bool validateFlags(const char *command,
                       const std::set<std::string> &known,
                       const std::set<std::string> &numeric = {},
                       const std::set<std::string> &integer = {},
                       const std::set<std::string> &u64 = {},
                       const std::set<std::string> &global = {}) const;
};

/**
 * Split argv into positionals and flags. Flags in @p boolean_flags
 * are presence-only and never consume a following token (else
 * "--batched bogus" would silently eat the stray argument).
 * Value-bearing flags keep an empty value when none follows, which
 * validateFlags then rejects instead of silently defaulting.
 */
CliArgs parseCliArgs(int argc, char **argv,
                     const std::set<std::string> &boolean_flags);

/** Sparsity flags are fractions in [0, 1]; prints and returns. */
bool checkSparsityFlag(const char *name, double value);

/** Cluster factors concentrate non-zeros; must be >= 1. */
bool checkClusterFlag(const char *name, double value);

/**
 * Enumerated string flag: @p value must be one of @p choices.
 * Prints the valid vocabulary to stderr and returns false otherwise
 * — never exits, per the validate-then-read contract.
 */
bool checkChoiceFlag(const char *name, const std::string &value,
                     const std::vector<std::string> &choices);

/** Strictly positive numeric flag (rates, durations, depths). */
bool checkPositiveFlag(const char *name, double value);

} // namespace dstc

#endif // DSTC_COMMON_CLI_FLAGS_H
