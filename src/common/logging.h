/**
 * @file
 * Status and error reporting in the gem5 style.
 *
 * fatal()  — the run cannot continue because of a user error (bad
 *            configuration, invalid arguments); exits with code 1.
 * panic()  — an internal invariant was violated (a dstc bug); aborts.
 * warn()   — something is suspicious but the run continues.
 * inform() — plain status output.
 */
#ifndef DSTC_COMMON_LOGGING_H
#define DSTC_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace dstc {

namespace detail {

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void fatalImpl(const std::string &msg, const char *file,
                            int line);
[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Terminate with exit(1): a condition that is the user's fault. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...),
                      nullptr, 0);
}

/** Terminate with abort(): something that should never happen. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...),
                      nullptr, 0);
}

/** Non-fatal warning to stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Informational message to stdout. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** panic() unless the stated invariant holds. */
#define DSTC_ASSERT(cond, ...)                                            \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::dstc::detail::panicImpl(                                    \
                ::dstc::detail::concat("assertion failed: " #cond " ",    \
                                       ##__VA_ARGS__),                    \
                __FILE__, __LINE__);                                      \
        }                                                                 \
    } while (0)

} // namespace dstc

#endif // DSTC_COMMON_LOGGING_H
