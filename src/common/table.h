/**
 * @file
 * Plain-text table formatting for the benchmark harnesses.
 *
 * Every bench binary prints the rows/series the paper reports; this
 * helper keeps the output format consistent across all of them.
 */
#ifndef DSTC_COMMON_TABLE_H
#define DSTC_COMMON_TABLE_H

#include <string>
#include <vector>

namespace dstc {

/** Accumulates rows of cells and renders them with aligned columns. */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment and a rule under the header. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits fractional digits. */
std::string fmtDouble(double value, int digits = 2);

/** Format a speedup as e.g. "4.38x". */
std::string fmtSpeedup(double value, int digits = 2);

} // namespace dstc

#endif // DSTC_COMMON_TABLE_H
