/**
 * @file
 * IEEE 754 binary16 storage type.
 *
 * Tensor Core multiplies in FP16 and accumulates in FP32; this type
 * models the storage/rounding behaviour so the functional kernels see
 * the same quantization the hardware would. Conversions use
 * round-to-nearest-even, and handle subnormals, infinities and NaN.
 */
#ifndef DSTC_COMMON_FP16_H
#define DSTC_COMMON_FP16_H

#include <cstdint>

namespace dstc {

/** Convert a float to its binary16 bit pattern (round-to-nearest-even). */
uint16_t floatToHalfBits(float value);

/** Convert a binary16 bit pattern to float (exact). */
float halfBitsToFloat(uint16_t bits);

/**
 * A 16-bit floating point value with float conversion operators.
 *
 * Arithmetic is intentionally not provided: Tensor Core datapaths
 * convert to wider types before computing, so kernels should convert
 * to float explicitly and round only on store.
 */
class Fp16
{
  public:
    Fp16() : bits_(0) {}
    explicit Fp16(float value) : bits_(floatToHalfBits(value)) {}

    /** Construct from a raw bit pattern. */
    static Fp16
    fromBits(uint16_t bits)
    {
        Fp16 h;
        h.bits_ = bits;
        return h;
    }

    /** The exact float this half represents. */
    float toFloat() const { return halfBitsToFloat(bits_); }
    explicit operator float() const { return toFloat(); }

    uint16_t bits() const { return bits_; }

    bool operator==(const Fp16 &other) const = default;

  private:
    uint16_t bits_;
};

/** Round a float through FP16 precision (the A/B operand quantization). */
inline float
roundToFp16(float value)
{
    return halfBitsToFloat(floatToHalfBits(value));
}

} // namespace dstc

#endif // DSTC_COMMON_FP16_H
