/**
 * @file
 * IEEE 754 binary16 storage type.
 *
 * Tensor Core multiplies in FP16 and accumulates in FP32; this type
 * models the storage/rounding behaviour so the functional kernels see
 * the same quantization the hardware would. Conversions use
 * round-to-nearest-even, and handle subnormals, infinities and NaN.
 */
#ifndef DSTC_COMMON_FP16_H
#define DSTC_COMMON_FP16_H

#include <bit>
#include <cstdint>

namespace dstc {

/**
 * Convert a float to its binary16 bit pattern
 * (round-to-nearest-even). Inline: the word-parallel encoders round
 * every non-zero at encode time, so this sits on the encode hot
 * path.
 */
inline uint16_t
floatToHalfBits(float value)
{
    uint32_t f = std::bit_cast<uint32_t>(value);
    uint32_t sign = (f >> 16) & 0x8000u;
    int32_t exp = static_cast<int32_t>((f >> 23) & 0xff) - 127 + 15;
    uint32_t mant = f & 0x007fffffu;

    if (((f >> 23) & 0xff) == 0xff) {
        // Inf or NaN. Preserve a NaN payload bit so NaN stays NaN.
        return static_cast<uint16_t>(sign | 0x7c00u |
                                     (mant ? 0x200u : 0));
    }

    if (exp >= 0x1f) {
        // Overflow to infinity.
        return static_cast<uint16_t>(sign | 0x7c00u);
    }

    if (exp <= 0) {
        // Subnormal half (or zero). The implicit leading 1 becomes
        // explicit, then the mantissa is shifted right with rounding.
        if (exp < -10)
            return static_cast<uint16_t>(sign);
        mant |= 0x00800000u;
        int shift = 14 - exp; // total right shift from 23-bit mantissa
        uint32_t half_mant = mant >> shift;
        uint32_t remainder = mant & ((1u << shift) - 1);
        uint32_t halfway = 1u << (shift - 1);
        // Branchless round-up (may carry into the exponent; correct).
        half_mant += (remainder > halfway) |
                     ((remainder == halfway) & (half_mant & 1u));
        return static_cast<uint16_t>(sign | half_mant);
    }

    // Normal half with round-to-nearest-even on the dropped 13 bits.
    // The round-up increment is branchless: the tie/round decision
    // flips per value, and a data-dependent branch here mispredicts
    // half the time on the encode hot path.
    uint32_t half_mant = mant >> 13;
    uint32_t remainder = mant & 0x1fffu;
    uint16_t result = static_cast<uint16_t>(
        sign | (static_cast<uint32_t>(exp) << 10) | half_mant);
    result += (remainder > 0x1000u) |
              ((remainder == 0x1000u) & (result & 1u));
    // carry propagates into the exponent correctly
    return result;
}

/** Convert a binary16 bit pattern to float (exact). */
inline float
halfBitsToFloat(uint16_t bits)
{
    uint32_t sign = static_cast<uint32_t>(bits & 0x8000u) << 16;
    uint32_t exp = (bits >> 10) & 0x1f;
    uint32_t mant = bits & 0x3ffu;

    uint32_t f;
    if (exp == 0) {
        if (mant == 0) {
            f = sign; // signed zero
        } else {
            // Subnormal: normalize by shifting the mantissa up.
            int e = -1;
            do {
                ++e;
                mant <<= 1;
            } while ((mant & 0x400u) == 0);
            mant &= 0x3ffu;
            f = sign | (static_cast<uint32_t>(127 - 15 - e) << 23) |
                (mant << 13);
        }
    } else if (exp == 0x1f) {
        f = sign | 0x7f800000u | (mant << 13); // Inf / NaN
    } else {
        f = sign | ((exp - 15 + 127) << 23) | (mant << 13);
    }
    return std::bit_cast<float>(f);
}

/**
 * A 16-bit floating point value with float conversion operators.
 *
 * Arithmetic is intentionally not provided: Tensor Core datapaths
 * convert to wider types before computing, so kernels should convert
 * to float explicitly and round only on store.
 */
class Fp16
{
  public:
    Fp16() : bits_(0) {}
    explicit Fp16(float value) : bits_(floatToHalfBits(value)) {}

    /** Construct from a raw bit pattern. */
    static Fp16
    fromBits(uint16_t bits)
    {
        Fp16 h;
        h.bits_ = bits;
        return h;
    }

    /** The exact float this half represents. */
    float toFloat() const { return halfBitsToFloat(bits_); }
    explicit operator float() const { return toFloat(); }

    uint16_t bits() const { return bits_; }

    bool operator==(const Fp16 &other) const = default;

  private:
    uint16_t bits_;
};

/** Round a float through FP16 precision (the A/B operand quantization). */
inline float
roundToFp16(float value)
{
    return halfBitsToFloat(floatToHalfBits(value));
}

} // namespace dstc

#endif // DSTC_COMMON_FP16_H
