#include "common/datatype.h"

#include "common/logging.h"

namespace dstc {

const char *
dataTypeToken(DataType dtype)
{
    switch (dtype) {
      case DataType::Fp32:
        return "fp32";
      case DataType::Fp16:
        return "fp16";
      case DataType::Bf16:
        return "bf16";
      case DataType::Int8:
        return "int8";
      case DataType::Int4:
        return "int4";
    }
    panic("unknown datatype");
}

const char *
dataTypeName(DataType dtype)
{
    switch (dtype) {
      case DataType::Fp32:
        return "FP32";
      case DataType::Fp16:
        return "FP16";
      case DataType::Bf16:
        return "BF16";
      case DataType::Int8:
        return "INT8 (symmetric, int32 accumulate)";
      case DataType::Int4:
        return "INT4 (symmetric, int32 accumulate)";
    }
    panic("unknown datatype");
}

bool
parseDataType(const std::string &token, DataType *out)
{
    for (DataType dt : {DataType::Fp32, DataType::Fp16, DataType::Bf16,
                        DataType::Int8, DataType::Int4}) {
        if (token == dataTypeToken(dt)) {
            *out = dt;
            return true;
        }
    }
    return false;
}

QuantSpec
QuantSpec::forValues(DataType dtype, const float *data, size_t n)
{
    if (!dataTypeIsInteger(dtype))
        return QuantSpec{dtype, 1.0f};
    float max_abs = 0.0f;
    for (size_t i = 0; i < n; ++i) {
        const float a = std::fabs(data[i]);
        if (a > max_abs)
            max_abs = a;
    }
    return forMaxAbs(dtype, max_abs);
}

} // namespace dstc
