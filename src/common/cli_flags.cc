#include "common/cli_flags.h"

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dstc {

namespace {

/** Full-token strtoll with range reporting. */
bool
parseWholeLl(const std::string &v, long long *out)
{
    char *end = nullptr;
    errno = 0;
    const long long parsed = std::strtoll(v.c_str(), &end, 10);
    if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE)
        return false;
    *out = parsed;
    return true;
}

} // namespace

bool
CliArgs::hasFlag(const std::string &name) const
{
    for (const auto &[k, v] : flags)
        if (k == name)
            return true;
    return false;
}

std::string
CliArgs::flag(const std::string &name, const std::string &fallback) const
{
    for (const auto &[k, v] : flags)
        if (k == name)
            return v;
    return fallback;
}

double
CliArgs::flagD(const std::string &name, double fallback) const
{
    for (const auto &[k, v] : flags)
        if (k == name)
            return std::atof(v.c_str());
    return fallback;
}

int
CliArgs::flagI(const std::string &name, int fallback) const
{
    for (const auto &[k, v] : flags) {
        if (k != name)
            continue;
        long long parsed = 0;
        if (!parseWholeLl(v, &parsed) || parsed < INT_MIN ||
            parsed > INT_MAX)
            return fallback; // validateFlags already rejected it
        return static_cast<int>(parsed);
    }
    return fallback;
}

uint64_t
CliArgs::flagU64(const std::string &name, uint64_t fallback) const
{
    for (const auto &[k, v] : flags)
        if (k == name)
            return std::strtoull(v.c_str(), nullptr, 10);
    return fallback;
}

bool
CliArgs::checkPositionals(const char *command,
                          size_t max_positionals) const
{
    if (positional.size() <= max_positionals)
        return true;
    std::fprintf(stderr,
                 "error: unexpected argument '%s' for command '%s'\n",
                 positional[max_positionals].c_str(), command);
    return false;
}

bool
CliArgs::validateFlags(const char *command,
                       const std::set<std::string> &known,
                       const std::set<std::string> &numeric,
                       const std::set<std::string> &integer,
                       const std::set<std::string> &u64,
                       const std::set<std::string> &global) const
{
    bool ok = true;
    for (const auto &[k, v] : flags) {
        if (!known.count(k) && !global.count(k)) {
            std::string valid;
            for (const auto &name : global)
                valid += (valid.empty() ? "--" : ", --") + name;
            for (const auto &name : known)
                valid += (valid.empty() ? "--" : ", --") + name;
            std::fprintf(stderr,
                         "error: unknown flag '--%s' for command "
                         "'%s' (valid: %s)\n",
                         k.c_str(), command, valid.c_str());
            ok = false;
            continue;
        }
        if (u64.count(k)) {
            char *end = nullptr;
            errno = 0;
            std::strtoull(v.c_str(), &end, 10);
            if (v.empty() || v[0] == '-' ||
                end != v.c_str() + v.size() || errno == ERANGE) {
                std::fprintf(stderr,
                             "error: flag '--%s' needs an unsigned "
                             "integer value, got '%s'\n",
                             k.c_str(), v.c_str());
                ok = false;
            }
        } else if (integer.count(k)) {
            long long parsed = 0;
            if (!parseWholeLl(v, &parsed) || parsed < INT_MIN ||
                parsed > INT_MAX) {
                std::fprintf(stderr,
                             "error: flag '--%s' needs an integer "
                             "value in range, got '%s'\n",
                             k.c_str(), v.c_str());
                ok = false;
            }
        } else if (numeric.count(k)) {
            char *end = nullptr;
            const double value = std::strtod(v.c_str(), &end);
            if (v.empty() || end != v.c_str() + v.size() ||
                !std::isfinite(value)) {
                std::fprintf(stderr,
                             "error: flag '--%s' needs a finite "
                             "numeric value, got '%s'\n",
                             k.c_str(), v.c_str());
                ok = false;
            }
        }
    }
    return ok;
}

CliArgs
parseCliArgs(int argc, char **argv,
             const std::set<std::string> &boolean_flags)
{
    CliArgs args;
    for (int i = 1; i < argc; ++i) {
        std::string token = argv[i];
        if (token.rfind("--", 0) == 0) {
            std::string name = token.substr(2);
            // Valueless flags keep an empty value: boolean flags
            // only test presence, and value-bearing flags fail
            // validation instead of silently defaulting.
            std::string value;
            if (!boolean_flags.count(name) && i + 1 < argc &&
                argv[i + 1][0] != '-')
                value = argv[++i];
            args.flags.emplace_back(std::move(name),
                                    std::move(value));
        } else {
            args.positional.push_back(std::move(token));
        }
    }
    return args;
}

bool
checkSparsityFlag(const char *name, double value)
{
    if (value >= 0.0 && value <= 1.0)
        return true;
    std::fprintf(stderr, "error: --%s must be in [0, 1], got %g\n",
                 name, value);
    return false;
}

bool
checkClusterFlag(const char *name, double value)
{
    if (value >= 1.0)
        return true;
    std::fprintf(stderr, "error: --%s must be >= 1, got %g\n", name,
                 value);
    return false;
}

bool
checkChoiceFlag(const char *name, const std::string &value,
                const std::vector<std::string> &choices)
{
    for (const std::string &choice : choices)
        if (value == choice)
            return true;
    std::string valid;
    for (const std::string &choice : choices)
        valid += (valid.empty() ? "" : ", ") + choice;
    std::fprintf(stderr, "error: --%s must be one of {%s}, got '%s'\n",
                 name, valid.c_str(), value.c_str());
    return false;
}

bool
checkPositiveFlag(const char *name, double value)
{
    if (value > 0.0)
        return true;
    std::fprintf(stderr, "error: --%s must be > 0, got %g\n", name,
                 value);
    return false;
}

} // namespace dstc
