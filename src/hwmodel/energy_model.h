/**
 * @file
 * Kernel energy model: converts a KernelStats record into energy by
 * charging per-operation energies (FP16 MAC, binary MAC, POPC, SRAM
 * accumulation access, DRAM transfer) plus static power over the
 * kernel's runtime.
 *
 * The per-op constants are 12 nm estimates in the range used by
 * accelerator papers of the period; they matter only *relatively* —
 * the evaluation compares methods on the same constants, mirroring
 * how the paper argues efficiency (Sec. I, Table IV).
 */
#ifndef DSTC_HWMODEL_ENERGY_MODEL_H
#define DSTC_HWMODEL_ENERGY_MODEL_H

#include "common/datatype.h"
#include "timing/gpu_config.h"
#include "timing/stats.h"

namespace dstc {

/** Per-operation energy constants (picojoules) at 12 nm. */
struct EnergyParams
{
    double fp16_mac_pj = 1.1;      ///< FP16 multiply + FP32 accumulate
    double binary_mac_pj = 0.07;   ///< 1-bit AND + pop-accumulate
    double popc_pj = 0.4;          ///< 32-bit population count
    double accum_sram_pj = 0.35;   ///< banked accumulation access
    double dram_pj_per_byte = 7.0; ///< HBM2 access energy
    double static_w = 80.0;        ///< idle/leakage draw of the chip

    static EnergyParams v100_12nm() { return {}; }
};

/** Energy breakdown of one kernel, in microjoules. */
struct EnergyReport
{
    double compute_uj = 0.0; ///< MAC + bitmap + POPC energy
    double merge_uj = 0.0;   ///< accumulation-buffer traffic
    double dram_uj = 0.0;    ///< DRAM transfer energy
    double static_uj = 0.0;  ///< static power x runtime

    double
    totalUj() const
    {
        return compute_uj + merge_uj + dram_uj + static_uj;
    }
};

/**
 * Charge the per-op energies against a kernel's statistics. @p dtype
 * scales the MAC terms by dataTypeMacEnergyScale (narrow integer
 * multipliers are far cheaper than the FP16 pipe); the bitmap, POPC,
 * merge and DRAM terms already reflect the datatype through the
 * stats record itself (traffic shrinks with the lane width).
 */
EnergyReport estimateEnergy(const KernelStats &stats,
                            const EnergyParams &params,
                            const GpuConfig &cfg,
                            DataType dtype = DataType::Fp16);

/**
 * Dense-GEMM energy for the same m x n x k work at @p dtype: the
 * baseline an efficiency ratio is formed against.
 */
EnergyReport denseGemmEnergy(int64_t m, int64_t n, int64_t k,
                             const EnergyParams &params,
                             const GpuConfig &cfg,
                             DataType dtype = DataType::Fp16);

} // namespace dstc

#endif // DSTC_HWMODEL_ENERGY_MODEL_H
