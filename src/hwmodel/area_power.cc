#include "hwmodel/area_power.h"

#include <cmath>

#include "common/logging.h"

namespace dstc {

double
OverheadReport::totalAreaMm2() const
{
    double total = 0.0;
    for (const auto &c : components)
        total += c.area_mm2;
    return total;
}

double
OverheadReport::totalPowerW() const
{
    double total = 0.0;
    for (const auto &c : components)
        total += c.power_w;
    return total;
}

double
nodeAreaScale(int from_nm, int to_nm)
{
    DSTC_ASSERT(from_nm > 0 && to_nm > 0);
    // Area scales close to the square of the feature size across the
    // planar/early-FinFET nodes used here (Stillmaker & Baas report
    // near-quadratic scaling from 22 nm down to 14/12 nm).
    const double ratio = static_cast<double>(to_nm) / from_nm;
    return ratio * ratio;
}

namespace {

// Per-unit constants at 12 nm, calibrated so the V100 configuration
// (80 SMs x 4 sub-cores, 4 KB buffer, 128 accumulators, window-8
// collector) reproduces Table IV. They are ordinary per-instance
// densities, so non-V100 configurations scale sensibly.

/** mm^2 per KB for the banked accumulation SRAM (22 nm, pre-scale). */
constexpr double kSramMm2PerKb22nm = 8.762e-3 / 0.2975; // /scale(22->12)

/** Leakage+dynamic W per KB for that SRAM at 12 nm. */
constexpr double kSramWPerKb = 1.08 / 1280.0;

/** mm^2 per FP32 accumulate adder at 12 nm (RTL estimate). */
constexpr double kAdderMm2 = 0.121 / (320.0 * 128.0);

/** W per FP32 adder at full toggle, 12 nm. */
constexpr double kAdderW = 2.35 / (320.0 * 128.0);

/** mm^2 per operand-collector queue entry (queues + crossbar share). */
constexpr double kCollectorMm2PerEntry = 1.51 / (320.0 * 8.0);

/** W per collector queue entry. */
constexpr double kCollectorWPerEntry = 0.46 / (320.0 * 8.0);

} // namespace

double
sramAreaMm2(double kbytes, int banks, int node_nm)
{
    DSTC_ASSERT(kbytes >= 0.0 && banks > 0);
    // Banking overhead: decoders/sense amps replicate per bank; the
    // 128-bank reference point is folded into the density constant.
    const double bank_factor =
        1.0 + 0.02 * (std::log2(static_cast<double>(banks)) - 7.0);
    return kbytes * kSramMm2PerKb22nm * bank_factor *
           nodeAreaScale(22, node_nm);
}

OverheadReport
estimateOverhead(const GpuConfig &cfg, DataType dtype)
{
    OverheadReport report;
    const double subcores = cfg.totalSubcores();

    // 128-way parallel accumulators (Sec. III-B4): FP32 adders that
    // replace the narrower FEDP accumulate network.
    const double adders = subcores * cfg.accum_banks;
    report.components.push_back(
        {"Float Point Adders", adders * kAdderMm2, adders * kAdderW});

    // Integer datatypes add an INT32 accumulate mode beside the FP32
    // adders. A 32-bit integer adder is a small fraction of an FP32
    // adder (no alignment shifter / normalizer), so charge the mode
    // at that fraction of the FP constants.
    if (dataTypeIsInteger(dtype)) {
        constexpr double kIntAdderFraction = 0.3;
        report.components.push_back(
            {"INT32 Accumulate Adders",
             adders * kAdderMm2 * kIntAdderFraction,
             adders * kAdderW * kIntAdderFraction});
    }

    // Accumulation operand collector (Fig. 20): queues + crossbar.
    const double entries = subcores * cfg.collector_window;
    report.components.push_back({"Accumulation Operand Collector",
                                 entries * kCollectorMm2PerEntry,
                                 entries * kCollectorWPerEntry});

    // Shared accumulation buffer: accum_bytes per sub-core.
    const double total_kb = subcores * cfg.accum_bytes / 1024.0;
    report.components.push_back(
        {"Shared Accumulation Buffer",
         sramAreaMm2(total_kb, cfg.accum_banks, 12),
         total_kb * kSramWPerKb});
    return report;
}

} // namespace dstc
