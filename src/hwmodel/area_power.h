/**
 * @file
 * Hardware overhead model (Sec. VI-E, Table IV): area and power of
 * the three added structures — FP32 accumulation adders, the
 * accumulation operand collector, and the shared accumulation
 * buffer — on the V100 die.
 *
 * SRAM structures follow a CACTI-7-style capacity model evaluated at
 * 22 nm and scaled to 12 nm with Stillmaker-Baas-style factors; the
 * logic constants come from the paper's RTL estimates. Per-unit
 * constants are calibrated so the V100 configuration reproduces
 * Table IV, and the model then scales with the machine description
 * (SM count, buffer size, collector window) for ablations.
 */
#ifndef DSTC_HWMODEL_AREA_POWER_H
#define DSTC_HWMODEL_AREA_POWER_H

#include <string>
#include <vector>

#include "common/datatype.h"
#include "timing/gpu_config.h"

namespace dstc {

/** One added hardware structure's cost. */
struct ComponentOverhead
{
    std::string name;
    double area_mm2 = 0.0;
    double power_w = 0.0;
};

/** The full overhead report (Table IV). */
struct OverheadReport
{
    std::vector<ComponentOverhead> components;
    double die_area_mm2 = 815.0; ///< V100 die
    double tdp_w = 250.0;        ///< V100 TDP

    double totalAreaMm2() const;
    double totalPowerW() const;
    double areaFraction() const { return totalAreaMm2() / die_area_mm2; }
    double powerFraction() const { return totalPowerW() / tdp_w; }
};

/** Linear process-node area scaling factor (from -> to). */
double nodeAreaScale(int from_nm, int to_nm);

/**
 * Banked-SRAM area in mm^2 at @p node_nm. The density constant
 * reflects a heavily banked, latency-critical local buffer (not a
 * dense cache macro).
 */
double sramAreaMm2(double kbytes, int banks, int node_nm);

/**
 * Overhead of the dual-side sparse extension on @p cfg. When @p dtype
 * is an integer datatype, the accumulation adders additionally carry
 * an INT32 accumulate mode (the IMMA-style datapath); integer adders
 * are far smaller than the FP32 ones, so the extra mode shows up as a
 * modest fourth component rather than a doubling.
 */
OverheadReport estimateOverhead(const GpuConfig &cfg,
                                DataType dtype = DataType::Fp16);

} // namespace dstc

#endif // DSTC_HWMODEL_AREA_POWER_H
