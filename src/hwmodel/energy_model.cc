#include "hwmodel/energy_model.h"

#include "gemm/dense_gemm.h"

namespace dstc {

EnergyReport
estimateEnergy(const KernelStats &stats, const EnergyParams &params,
               const GpuConfig &cfg, DataType dtype)
{
    EnergyReport report;

    // Tensor-core math: issued OHMMAs each perform a full chunk of
    // MACs (padding lanes burn energy too — condensing is not free);
    // HMMA is the dense primitive; BOHMMA processes a 32x32 binary
    // tile per instruction. The per-MAC energy follows the request
    // datatype (bitmap/POPC machinery does not).
    const double mac_pj =
        params.fp16_mac_pj * dataTypeMacEnergyScale(dtype);
    const double ohmma_macs =
        static_cast<double>(stats.mix.ohmma_issued) * cfg.ohmma_macs;
    const double hmma_macs =
        static_cast<double>(stats.mix.hmma) * 8 * 8 * 4;
    const double bohmma_bitops =
        static_cast<double>(stats.mix.bohmma) * 32 * 32;
    report.compute_uj =
        (ohmma_macs + hmma_macs) * mac_pj * 1e-6 +
        bohmma_bitops * params.binary_mac_pj * 1e-6 +
        static_cast<double>(stats.mix.popc) * params.popc_pj * 1e-6;

    // Merge traffic: one banked-SRAM read-modify-write per scattered
    // accumulation (approximated by merge cycles x banks busy).
    report.merge_uj = static_cast<double>(stats.merge_cycles) *
                      cfg.accum_banks * 0.25 * params.accum_sram_pj *
                      1e-6;

    report.dram_uj = stats.dram_bytes * params.dram_pj_per_byte * 1e-6;
    report.static_uj = params.static_w * stats.timeUs(); // W*us = uJ
    return report;
}

EnergyReport
denseGemmEnergy(int64_t m, int64_t n, int64_t k,
                const EnergyParams &params, const GpuConfig &cfg,
                DataType dtype)
{
    DenseGemmDevice device(cfg);
    KernelStats stats = device.timeOnly(m, n, k, dtype);
    // The dense kernel has no bitmap/POPC/merge machinery: charge
    // pure MAC + DRAM + static energy.
    EnergyReport report;
    report.compute_uj = static_cast<double>(m) * n * k *
                        params.fp16_mac_pj *
                        dataTypeMacEnergyScale(dtype) * 1e-6;
    report.dram_uj = stats.dram_bytes * params.dram_pj_per_byte * 1e-6;
    report.static_uj = params.static_w * stats.timeUs(); // W*us = uJ
    return report;
}

} // namespace dstc
