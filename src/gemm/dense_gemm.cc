#include "gemm/dense_gemm.h"

#include <algorithm>

#include "common/bitutil.h"
#include "gemm/wmma.h"

namespace dstc {

DenseGemmDevice::DenseGemmDevice(const GpuConfig &cfg)
    : cfg_(cfg), memory_model_(cfg)
{
}

DenseGemmResult
DenseGemmDevice::multiply(const Matrix<float> &a, const Matrix<float> &b,
                          bool outer_product, const QuantSpec &spec_a,
                          const QuantSpec &spec_b) const
{
    DSTC_ASSERT(spec_a.dtype == spec_b.dtype,
                "operand datatypes must match");
    DSTC_ASSERT(a.cols() == b.rows());
    const int m = a.rows(), k = a.cols(), n = b.cols();

    DenseGemmResult result;
    result.d = Matrix<float>(m, n);

    // Tile the problem into 16x16x16 WMMA fragments; K tiles run in
    // increasing order so accumulation order matches the references.
    constexpr int kT = 16;
    for (int i0 = 0; i0 < m; i0 += kT) {
        for (int j0 = 0; j0 < n; j0 += kT) {
            const int mm = std::min(kT, m - i0);
            const int nn = std::min(kT, n - j0);
            Matrix<float> acc(mm, nn);
            for (int k0 = 0; k0 < k; k0 += kT) {
                const int kk = std::min(kT, k - k0);
                Matrix<float> a_frag(mm, kk), b_frag(kk, nn);
                for (int r = 0; r < mm; ++r)
                    for (int c = 0; c < kk; ++c)
                        a_frag.at(r, c) = a.at(i0 + r, k0 + c);
                for (int r = 0; r < kk; ++r)
                    for (int c = 0; c < nn; ++c)
                        b_frag.at(r, c) = b.at(k0 + r, j0 + c);
                acc = outer_product
                          ? wmmaOuter(a_frag, b_frag, &acc, spec_a,
                                      spec_b)
                          : wmmaInner(a_frag, b_frag, &acc, spec_a,
                                      spec_b);
            }
            for (int r = 0; r < mm; ++r)
                for (int c = 0; c < nn; ++c)
                    result.d.at(i0 + r, j0 + c) = acc.at(r, c);
        }
    }

    // Deferred integer output scaling: the WMMA tiles accumulated raw
    // codes; one sa * sb multiply per element restores the physical
    // scale (bitwise equal to the dual-sparse engine's pass).
    const float out_scale = QuantSpec::outputScale(spec_a, spec_b);
    if (out_scale != 1.0f) {
        for (float &v : result.d.data())
            v *= out_scale;
    }

    result.stats = timeOnly(m, n, k, spec_a.dtype);
    return result;
}

KernelStats
DenseGemmDevice::timeOnly(int64_t m, int64_t n, int64_t k,
                          DataType dtype) const
{
    DSTC_ASSERT(m > 0 && n > 0 && k > 0);
    KernelStats stats;
    stats.name = "dense_gemm";

    // Compute: every MAC is issued; the efficiency derating covers
    // scheduling bubbles and tail tiles of a tuned dense kernel. The
    // int8/int4 pipes retire 2x/4x the MACs per cycle (IMMA-style).
    const double macs = static_cast<double>(m) * n * k;
    const double cycles =
        macs / (cfg_.peakMacsPerCycle() * cfg_.dense_gemm_efficiency *
                dataTypeComputeScale(dtype));
    stats.compute_us = cycles / (cfg_.clock_ghz * 1e3);
    stats.mix.hmma = static_cast<int64_t>(
        ceilDiv<int64_t>(m, 8) * ceilDiv<int64_t>(n, 8) *
        ceilDiv<int64_t>(k, 4));

    // Memory: operands and output at the datatype's lane width,
    // block-tiled reuse.
    const double in_bytes = dataTypeValueBytes(dtype);
    const double bytes_a = static_cast<double>(m) * k * in_bytes;
    const double bytes_b = static_cast<double>(k) * n * in_bytes;
    const double bytes_d =
        static_cast<double>(m) * n * dataTypeOutputBytes(dtype);
    stats.dram_bytes =
        memory_model_.gemmTrafficBytes(m, n, bytes_a, bytes_b, bytes_d);
    stats.memory_us = memory_model_.dramTimeUs(stats.dram_bytes);
    stats.launch_us = cfg_.kernel_launch_us;
    stats.bound = stats.compute_us > stats.memory_us ? Bound::Compute
                                                     : Bound::Memory;
    return stats;
}

} // namespace dstc
