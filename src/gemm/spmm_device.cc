#include "gemm/spmm_device.h"

#include <algorithm>

#include "common/bitutil.h"
#include "core/thread_pool.h"
#include "isa/program_builder.h"
#include "timing/merge_model.h"
#include "timing/scheduler.h"

namespace dstc {

namespace {

/** Same fixed per-tile pipeline cost the SpGEMM model charges: here
 *  one per (strip, output tile column) — the strip's 8 x 32
 *  accumulator region is staged in and out once, since the strip
 *  covers all of K in a single pass (no K chunking to spill
 *  between). */
constexpr int64_t kTileOverheadCycles = 4;

/** B quantized once through its spec into a contiguous k x n
 *  buffer, so every functional path multiplies the identical lane
 *  values. Element-wise, hence worker-independent. */
std::vector<float>
quantizeB(const Matrix<float> &b, const QuantSpec &spec_b,
          int num_workers)
{
    const int64_t k = b.rows(), n = b.cols();
    std::vector<float> bq(static_cast<size_t>(k) * n);
    const float *src = b.data().data();
    float *dst = bq.data();
    auto run_row = [&](int64_t r) {
        const size_t base = static_cast<size_t>(r) * n;
        for (int64_t c = 0; c < n; ++c)
            dst[base + c] = spec_b.apply(src[base + c]);
    };
    int max_workers = 1;
    ThreadPool *pool = resolveTilePool(num_workers, &max_workers);
    parallelFor(pool, k, max_workers, run_row);
    return bq;
}

} // namespace

SpmmDevice::SpmmDevice(const GpuConfig &cfg)
    : cfg_(cfg), memory_model_(cfg)
{
}

KernelStats
SpmmDevice::narrowTimeFromCounts(
    const std::vector<int64_t> &strip_vectors,
    const std::vector<int64_t> &strip_nnz, int64_t m, int64_t n,
    int64_t k, DataType dtype) const
{
    const int n_strips = static_cast<int>(strip_vectors.size());
    const int tiles_n = static_cast<int>(ceilDiv<int64_t>(n, 32));
    const int64_t wps = ceilDiv<int64_t>(k, 64);
    const SpWmmaShape shape;
    MergeCostModel merge_model(cfg_.accum_banks,
                               cfg_.operand_collector);

    KernelStats stats;
    stats.name = "dstc_spmm_narrow";

    // One schedulable unit per (strip, output tile column): the
    // strip walks its level-1 words once (POPC/ctz scan on the
    // scalar pipe), issues one A-chunk per non-empty 8x1 vector
    // against the tile column's B chunks, and merges nnz * n_cols
    // scattered accumulations. Strips with no vectors are skipped
    // whole — the narrow counterpart of the warp-bitmap skip.
    std::vector<int64_t> work;
    work.reserve(static_cast<size_t>(n_strips) * tiles_n);
    int64_t total_vectors = 0, total_nnz = 0;
    for (int s = 0; s < n_strips; ++s) {
        const int64_t nv = strip_vectors[static_cast<size_t>(s)];
        const int64_t nnz = strip_nnz[static_cast<size_t>(s)];
        total_vectors += nv;
        total_nnz += nnz;
        for (int tj = 0; tj < tiles_n; ++tj) {
            if (nv == 0) {
                ++stats.warp_tiles_skipped;
                continue;
            }
            ++stats.warp_tiles;
            const int n_cols = static_cast<int>(
                std::min<int64_t>(32, n - static_cast<int64_t>(tj) *
                                              32));
            const int b_chunks = ceilDiv(n_cols, shape.b_chunk);
            const int64_t issued = nv * b_chunks;
            stats.mix.popc += wps;
            stats.mix.ohmma_issued += issued;
            stats.mix.ohmma_skipped += (k - nv) * b_chunks;
            const int64_t issue_cycles = issued;
            const int64_t scalar_cycles = wps + 2;
            const int64_t accesses = nnz * n_cols;
            const int64_t merge_cycles = static_cast<int64_t>(
                merge_model.tileCycles(accesses, issued));
            stats.merge_cycles += merge_cycles;
            work.push_back(std::max({issue_cycles, merge_cycles,
                                     scalar_cycles}) +
                           kTileOverheadCycles);
        }
    }

    const int64_t makespan = lptMakespan(work, cfg_.totalSubcores());
    stats.compute_us =
        static_cast<double>(makespan) /
        (cfg_.clock_ghz * 1e3 * cfg_.sparse_issue_efficiency *
         dataTypeComputeScale(dtype));

    const double bytes_a =
        static_cast<double>(NarrowTileMatrix::narrowEncodedBytes(
            m, k, total_vectors, total_nnz, dtype));
    const double bytes_b =
        static_cast<double>(k) * n * dataTypeValueBytes(dtype);
    const double bytes_d =
        static_cast<double>(m) * n * dataTypeOutputBytes(dtype);
    stats.dram_bytes = memory_model_.gemmTrafficBytes(
        m, n, bytes_a, bytes_b, bytes_d);
    stats.memory_us = memory_model_.dramTimeUs(stats.dram_bytes);
    stats.launch_us = cfg_.kernel_launch_us;
    stats.bound = stats.compute_us > stats.memory_us ? Bound::Compute
                                                     : Bound::Memory;
    return stats;
}

SpmmResult
SpmmDevice::multiplyNarrow(const NarrowTileMatrix &a,
                           const Matrix<float> &b,
                           const QuantSpec &spec_b,
                           const SpGemmOptions &options) const
{
    DSTC_ASSERT(a.cols() == b.rows(), "SpMM dims: ", a.rows(), "x",
                a.cols(), " * ", b.rows(), "x", b.cols());
    const QuantSpec &spec_a = a.spec();
    DSTC_ASSERT(spec_a.dtype == spec_b.dtype,
                "operand datatypes must match");
    const int64_t m = a.rows(), k = a.cols(), n = b.cols();
    const int n_strips = a.numStrips();

    SpmmResult result;
    if (options.functional) {
        const std::vector<float> bq =
            quantizeB(b, spec_b, options.num_workers);
        result.d = Matrix<float>(static_cast<int>(m),
                                 static_cast<int>(n));
        float *d_base = result.d.data().data();

        // Each strip owns a disjoint 8-row region of D, so the strip
        // loop partitions over workers with bitwise-identical
        // results: within a strip, every output cell accumulates its
        // products in ascending-column (= ascending-k) order.
        auto run_strip = [&](int64_t sl) {
            const int s = static_cast<int>(sl);
            const int64_t r0 =
                static_cast<int64_t>(s) * NarrowTileMatrix::kStripRows;
            int64_t v = a.stripOffset(s);
            const int wps = a.wordsPerStrip();
            for (int w = 0; w < wps; ++w) {
                uint64_t word = a.stripWord(s, w);
                const int64_t c_base = static_cast<int64_t>(w) << 6;
                while (word) {
                    const int64_t c =
                        c_base + std::countr_zero(word);
                    word &= word - 1;
                    uint8_t mask = a.vectorMask(v);
                    const float *vals =
                        a.vectorValuesQuant(v).data();
                    const float *brow =
                        bq.data() + static_cast<size_t>(c) * n;
                    while (mask) {
                        const int j = std::countr_zero(
                            static_cast<uint32_t>(mask));
                        mask =
                            static_cast<uint8_t>(mask & (mask - 1));
                        const float x = *vals++;
                        float *drow =
                            d_base +
                            static_cast<size_t>(r0 + j) * n;
                        for (int64_t cn = 0; cn < n; ++cn)
                            drow[cn] += x * brow[cn];
                    }
                    ++v;
                }
            }
        };
        int max_workers = 1;
        ThreadPool *pool =
            resolveTilePool(options.num_workers, &max_workers);
        parallelFor(pool, n_strips, max_workers, run_strip);

        // Integer datatypes accumulate codes; one deferred physical
        // scale per output element, after all accumulation.
        const float out_scale =
            QuantSpec::outputScale(spec_a, spec_b);
        if (out_scale != 1.0f) {
            float *dd = result.d.data().data();
            const size_t cells = static_cast<size_t>(m) * n;
            for (size_t i = 0; i < cells; ++i)
                dd[i] *= out_scale;
        }
    }

    std::vector<int64_t> strip_vectors(
        static_cast<size_t>(n_strips));
    std::vector<int64_t> strip_nnz(static_cast<size_t>(n_strips));
    for (int s = 0; s < n_strips; ++s) {
        strip_vectors[static_cast<size_t>(s)] = a.stripVectors(s);
        strip_nnz[static_cast<size_t>(s)] = a.stripNnz(s);
    }
    result.stats = narrowTimeFromCounts(strip_vectors, strip_nnz, m,
                                        n, k, spec_a.dtype);
    return result;
}

SpmmResult
SpmmDevice::multiplyWide(const TwoLevelBitmapMatrix &a,
                         const Matrix<float> &b,
                         const QuantSpec &spec_b,
                         const SpGemmOptions &options) const
{
    DSTC_ASSERT(a.cols() == b.rows(), "SpMM dims: ", a.rows(), "x",
                a.cols(), " * ", b.rows(), "x", b.cols());
    const QuantSpec &spec_a = a.spec();
    DSTC_ASSERT(spec_a.dtype == spec_b.dtype,
                "operand datatypes must match");
    const int64_t m = a.rows(), n = b.cols();
    const int tiles_m = a.numTileRows();
    const int tiles_k = a.numTileCols();

    SpmmResult result;
    if (options.functional) {
        const std::vector<float> bq =
            quantizeB(b, spec_b, options.num_workers);
        result.d = Matrix<float>(static_cast<int>(m),
                                 static_cast<int>(n));
        float *d_base = result.d.data().data();

        // Tile rows own disjoint 32-row regions of D. Within one,
        // k runs ascending (tk-major, then the tile's column lines),
        // and each line's values come ascending row — the exact
        // accumulation order of the narrow path, hence bitwise-equal
        // output.
        auto run_tile_row = [&](int64_t til) {
            const int ti = static_cast<int>(til);
            const int64_t r0 =
                static_cast<int64_t>(ti) * a.tileRows();
            int positions[64];
            for (int tk = 0; tk < tiles_k; ++tk) {
                if (!a.tileNonEmpty(ti, tk))
                    continue;
                const BitmapMatrix &tile = a.tile(ti, tk);
                const int64_t k0 =
                    static_cast<int64_t>(tk) * a.tileCols();
                const int span = tile.cols();
                for (int line = 0; line < span; ++line) {
                    const int cnt = tile.linePositionsInto(
                        line, 0, tile.rows(), positions);
                    if (cnt == 0)
                        continue;
                    const float *vals =
                        tile.lineValuesQuant(line).data();
                    const float *brow =
                        bq.data() +
                        static_cast<size_t>(k0 + line) * n;
                    for (int i = 0; i < cnt; ++i) {
                        const float x = vals[i];
                        float *drow =
                            d_base + static_cast<size_t>(
                                         r0 + positions[i]) *
                                         n;
                        for (int64_t cn = 0; cn < n; ++cn)
                            drow[cn] += x * brow[cn];
                    }
                }
            }
        };
        int max_workers = 1;
        ThreadPool *pool =
            resolveTilePool(options.num_workers, &max_workers);
        parallelFor(pool, tiles_m, max_workers, run_tile_row);

        const float out_scale =
            QuantSpec::outputScale(spec_a, spec_b);
        if (out_scale != 1.0f) {
            float *dd = result.d.data().data();
            const size_t cells = static_cast<size_t>(m) * n;
            for (size_t i = 0; i < cells; ++i)
                dd[i] *= out_scale;
        }
    }

    SpGemmOptions wide_options = options;
    wide_options.dtype = spec_a.dtype;
    result.stats = timeWideFromProfile(SparsityProfile::fromEncodedA(a),
                                       n, wide_options);
    return result;
}

KernelStats
SpmmDevice::timeNarrowFromProfile(const SparsityProfile &a, int64_t n,
                                  const SpGemmOptions &options) const
{
    DSTC_ASSERT(a.tile() == NarrowTileMatrix::kStripRows,
                "narrow SpMM profiles use strip (tile = 8) "
                "granularity");
    const int n_strips = a.groups();
    const int64_t k = a.k();
    std::vector<int64_t> strip_vectors(static_cast<size_t>(n_strips),
                                       0);
    std::vector<int64_t> strip_nnz(static_cast<size_t>(n_strips), 0);
    for (int s = 0; s < n_strips; ++s) {
        int64_t nv = 0, nnz = 0;
        for (int64_t kk = 0; kk < k; ++kk) {
            const int c = a.count(s, kk);
            nv += c > 0;
            nnz += c;
        }
        strip_vectors[static_cast<size_t>(s)] = nv;
        strip_nnz[static_cast<size_t>(s)] = nnz;
    }
    return narrowTimeFromCounts(strip_vectors, strip_nnz, a.extent(),
                                n, k, options.dtype);
}

KernelStats
SpmmDevice::timeWideFromProfile(const SparsityProfile &a, int64_t n,
                                const SpGemmOptions &options) const
{
    DSTC_ASSERT(a.tile() == options.tile_m,
                "wide SpMM profiles use warp-tile granularity");
    const int64_t k = a.k();
    const SparsityProfile b_dense =
        SparsityProfile::denseA(n, k, options.tile_n);
    SpGemmDevice device(cfg_);
    KernelStats stats = device.timeFromProfiles(a, b_dense, options);
    stats.name = "dstc_spmm_wide";

    // Override the memory side: B is a raw dense operand streamed at
    // its lane width, not a two-level encoding (no bitmap overhead,
    // no tile bookkeeping).
    const int64_t m_pad =
        static_cast<int64_t>(a.groups()) * options.tile_m;
    const int64_t n_pad =
        static_cast<int64_t>(b_dense.groups()) * options.tile_n;
    const double bytes_a = static_cast<double>(
        a.encodedBytes(options.tile_k, options.dtype));
    const double bytes_b = static_cast<double>(k) * n *
                           dataTypeValueBytes(options.dtype);
    const double bytes_d = static_cast<double>(m_pad) * n_pad *
                           dataTypeOutputBytes(options.dtype);
    stats.dram_bytes = memory_model_.gemmTrafficBytes(
        m_pad, n_pad, bytes_a, bytes_b, bytes_d);
    stats.memory_us = memory_model_.dramTimeUs(stats.dram_bytes);
    stats.bound = stats.compute_us > stats.memory_us ? Bound::Compute
                                                     : Bound::Memory;
    return stats;
}

} // namespace dstc
