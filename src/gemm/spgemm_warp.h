/**
 * @file
 * Warp-level bitmap SpGEMM engine (Sec. III-B): executes one warp
 * tile's outer-product multiply on the OTC model, both functionally
 * (producing the exact partial-sum values) and in time (building the
 * predicated SpWMMA instruction stream and charging the merge step).
 *
 * The hot path is word-parallel: bitmap lines are scanned 64 bits at
 * a time (ctz iteration) into a caller-owned scratch arena, so a
 * k-step costs no heap allocation, and the accumulator is a flat
 * row-major span the device model points directly into the output
 * matrix. The original per-element path survives as
 * computeTileScalar — the reference the equivalence tests and the
 * before/after bench compare against.
 */
#ifndef DSTC_GEMM_SPGEMM_WARP_H
#define DSTC_GEMM_SPGEMM_WARP_H

#include <cstdint>
#include <utility>
#include <vector>

#include "isa/program_builder.h"
#include "sparse/bitmap.h"
#include "tensor/matrix.h"
#include "timing/accum_buffer.h"
#include "timing/gpu_config.h"
#include "timing/merge_model.h"

namespace dstc {

/** Timing outcome of one warp tile's SpWMMA execution. */
struct WarpTileResult
{
    InstructionMix mix;
    int64_t issue_cycles = 0;   ///< tensor-core issue slots consumed
    int64_t merge_accesses = 0; ///< scattered accumulations performed
    int64_t merge_cycles = 0;   ///< accumulation-buffer time
    int64_t scalar_cycles = 0;  ///< POPC/predicate work per k-step
    int64_t macs = 0;           ///< real multiply-accumulates

    /**
     * Warp-visible cycles: the merge and scalar (POPC + predicate
     * setup) pipelines overlap tensor issue, so the slowest of the
     * three dominates (Sec. III-B4). The scalar term is the floor
     * that keeps fully-skipped k-steps from being free — the warp
     * still fetches and evaluates their predication.
     */
    int64_t
    cycles() const
    {
        int64_t c = issue_cycles > merge_cycles ? issue_cycles
                                                : merge_cycles;
        return c > scalar_cycles ? c : scalar_cycles;
    }

    WarpTileResult &
    operator+=(const WarpTileResult &other)
    {
        mix += other.mix;
        issue_cycles += other.issue_cycles;
        merge_accesses += other.merge_accesses;
        merge_cycles += other.merge_cycles;
        scalar_cycles += other.scalar_cycles;
        macs += other.macs;
        return *this;
    }
};

/**
 * Reusable per-worker scratch arena of the word-parallel tile path:
 * the condensed positions of the current k-step, plus the merge
 * trace of the detailed-merge simulator. One arena serves any number
 * of computeTile calls without reallocating; each concurrent worker
 * owns its own.
 */
struct WarpScratch
{
    std::vector<int> pos_a;    ///< A-line non-zero positions
    std::vector<int> pos_b;    ///< B-line non-zero positions
    MergeTrace trace;          ///< detailed-merge address stream

    /** Size the buffers for tiles up to @p m x @p n. */
    void
    reserveTile(int m, int n)
    {
        pos_a.resize(static_cast<size_t>(m));
        pos_b.resize(static_cast<size_t>(n));
    }
};

/** Executes warp tiles on the modeled outer-product Tensor Core. */
class SpGemmWarpEngine
{
  public:
    explicit SpGemmWarpEngine(const GpuConfig &cfg);

    /**
     * Functional + timed execution of one warp tile, word-parallel.
     *
     * @param a_tile column-major bitmap of the (m x k) A tile
     * @param b_tile row-major bitmap of the (k x n) B tile
     * @param accum  if non-null, the base of the row-major FP32
     *               accumulator region the partial sums merge into
     *               (gather-accumulate-scatter, Fig. 7); element
     *               (r, c) of the tile lands at accum[r * ld + c]
     * @param ld     accumulator leading dimension (row stride)
     * @param detailed_merge use the cycle-accurate bank simulator
     *               instead of the analytic merge model
     * @param scratch caller-owned scratch arena, reused across calls
     */
    WarpTileResult computeTile(const BitmapMatrix &a_tile,
                               const BitmapMatrix &b_tile, float *accum,
                               int ld, bool detailed_merge,
                               WarpScratch &scratch) const;

    /**
     * Convenience overload over a whole Matrix accumulator (tests,
     * single-tile benches); uses a per-thread scratch arena.
     */
    WarpTileResult computeTile(const BitmapMatrix &a_tile,
                               const BitmapMatrix &b_tile,
                               Matrix<float> *accum,
                               bool detailed_merge = false) const;

    /**
     * The pre-word-parallel per-element path, kept verbatim as the
     * reference model: the equivalence tests assert the word path
     * reproduces its results, stats and cycles bit-for-bit, and the
     * micro bench reports speedup against it. Unlike the word path —
     * which multiplies the pre-quantized lane the encoder filled —
     * this reference re-quantizes each raw operand value through
     * @p spec_a / @p spec_b per element, so the pin also verifies
     * that encode-time quantization equals compute-time
     * quantization. Specs default to the FP16 datapath.
     *
     * Defined in the test-only `dstc_reference` library (see
     * reference/scalar_spgemm.cc), which tests and benches link on
     * top of `dstc`; the shipped library carries the word-parallel
     * kernel alone.
     */
    WarpTileResult computeTileScalar(const BitmapMatrix &a_tile,
                                     const BitmapMatrix &b_tile,
                                     Matrix<float> *accum,
                                     bool detailed_merge = false,
                                     const QuantSpec &spec_a = {},
                                     const QuantSpec &spec_b = {}) const;

    /**
     * Timing-only execution from POPC results: @p popcs holds one
     * (popc_a, popc_b) pair per k-step. Used by the device-level
     * sweeps where values are irrelevant.
     */
    WarpTileResult timeTile(
        const std::vector<std::pair<int, int>> &popcs) const;

    const SpWmmaShape &shape() const { return shape_; }

  private:
    GpuConfig cfg_;
    SpWmmaShape shape_;
    MergeCostModel merge_model_;
};

} // namespace dstc

#endif // DSTC_GEMM_SPGEMM_WARP_H
