/**
 * @file
 * Warp-level bitmap SpGEMM engine (Sec. III-B): executes one warp
 * tile's outer-product multiply on the OTC model, both functionally
 * (producing the exact partial-sum values) and in time (building the
 * predicated SpWMMA instruction stream and charging the merge step).
 */
#ifndef DSTC_GEMM_SPGEMM_WARP_H
#define DSTC_GEMM_SPGEMM_WARP_H

#include <cstdint>
#include <utility>
#include <vector>

#include "isa/program_builder.h"
#include "sparse/bitmap.h"
#include "tensor/matrix.h"
#include "timing/accum_buffer.h"
#include "timing/gpu_config.h"
#include "timing/merge_model.h"

namespace dstc {

/** Timing outcome of one warp tile's SpWMMA execution. */
struct WarpTileResult
{
    InstructionMix mix;
    int64_t issue_cycles = 0;   ///< tensor-core issue slots consumed
    int64_t merge_accesses = 0; ///< scattered accumulations performed
    int64_t merge_cycles = 0;   ///< accumulation-buffer time
    int64_t scalar_cycles = 0;  ///< POPC/predicate work per k-step
    int64_t macs = 0;           ///< real multiply-accumulates

    /**
     * Warp-visible cycles: the merge and scalar (POPC + predicate
     * setup) pipelines overlap tensor issue, so the slowest of the
     * three dominates (Sec. III-B4). The scalar term is the floor
     * that keeps fully-skipped k-steps from being free — the warp
     * still fetches and evaluates their predication.
     */
    int64_t
    cycles() const
    {
        int64_t c = issue_cycles > merge_cycles ? issue_cycles
                                                : merge_cycles;
        return c > scalar_cycles ? c : scalar_cycles;
    }

    WarpTileResult &
    operator+=(const WarpTileResult &other)
    {
        mix += other.mix;
        issue_cycles += other.issue_cycles;
        merge_accesses += other.merge_accesses;
        merge_cycles += other.merge_cycles;
        scalar_cycles += other.scalar_cycles;
        macs += other.macs;
        return *this;
    }
};

/** Executes warp tiles on the modeled outer-product Tensor Core. */
class SpGemmWarpEngine
{
  public:
    explicit SpGemmWarpEngine(const GpuConfig &cfg);

    /**
     * Functional + timed execution of one warp tile.
     *
     * @param a_tile column-major bitmap of the (m x k) A tile
     * @param b_tile row-major bitmap of the (k x n) B tile
     * @param accum  if non-null, the (m x n) FP32 accumulator the
     *               partial sums merge into (gather-accumulate-
     *               scatter, Fig. 7)
     * @param detailed_merge use the cycle-accurate bank simulator
     *               instead of the analytic merge model
     */
    WarpTileResult computeTile(const BitmapMatrix &a_tile,
                               const BitmapMatrix &b_tile,
                               Matrix<float> *accum,
                               bool detailed_merge = false) const;

    /**
     * Timing-only execution from POPC results: @p popcs holds one
     * (popc_a, popc_b) pair per k-step. Used by the device-level
     * sweeps where values are irrelevant.
     */
    WarpTileResult timeTile(
        const std::vector<std::pair<int, int>> &popcs) const;

    const SpWmmaShape &shape() const { return shape_; }

  private:
    GpuConfig cfg_;
    SpWmmaShape shape_;
    MergeCostModel merge_model_;
};

} // namespace dstc

#endif // DSTC_GEMM_SPGEMM_WARP_H
