#include "gemm/wmma.h"

#include "common/fp16.h"
#include "common/logging.h"

namespace dstc {

Matrix<float>
wmmaInner(const Matrix<float> &a, const Matrix<float> &b,
          const Matrix<float> *c)
{
    DSTC_ASSERT(a.cols() == b.rows());
    Matrix<float> d(a.rows(), b.cols());
    if (c) {
        DSTC_ASSERT(c->rows() == d.rows() && c->cols() == d.cols());
        d = *c;
    }
    // FEDP: for each output element, a running dot product over k.
    for (int i = 0; i < a.rows(); ++i) {
        for (int j = 0; j < b.cols(); ++j) {
            float acc = d.at(i, j);
            for (int k = 0; k < a.cols(); ++k)
                acc += roundToFp16(a.at(i, k)) * roundToFp16(b.at(k, j));
            d.at(i, j) = acc;
        }
    }
    return d;
}

Matrix<float>
wmmaOuter(const Matrix<float> &a, const Matrix<float> &b,
          const Matrix<float> *c)
{
    DSTC_ASSERT(a.cols() == b.rows());
    Matrix<float> d(a.rows(), b.cols());
    if (c) {
        DSTC_ASSERT(c->rows() == d.rows() && c->cols() == d.cols());
        d = *c;
    }
    // FEOP: a rank-1 update per k; per output element the adds still
    // land in increasing-k order, matching wmmaInner bitwise.
    for (int k = 0; k < a.cols(); ++k) {
        for (int i = 0; i < a.rows(); ++i) {
            float av = roundToFp16(a.at(i, k));
            if (av == 0.0f)
                continue;
            for (int j = 0; j < b.cols(); ++j)
                d.at(i, j) += av * roundToFp16(b.at(k, j));
        }
    }
    return d;
}

} // namespace dstc
