#include "gemm/wmma.h"

#include "common/fp16.h"
#include "common/logging.h"

namespace dstc {

Matrix<float>
wmmaInner(const Matrix<float> &a, const Matrix<float> &b,
          const Matrix<float> *c, const QuantSpec &spec_a,
          const QuantSpec &spec_b)
{
    DSTC_ASSERT(a.cols() == b.rows());
    Matrix<float> d(a.rows(), b.cols());
    if (c) {
        DSTC_ASSERT(c->rows() == d.rows() && c->cols() == d.cols());
        d = *c;
    }
    // FEDP: per output element a running dot product over ascending
    // k. Quantize both fragments once up front (quantization is a
    // pure per-element function) and walk i-k-j so the inner loop
    // streams a row of B; each output element still receives exactly
    // the same products in the same k order, so results are
    // bit-identical to the per-element formulation.
    Matrix<float> ah(a.rows(), a.cols()), bh(b.rows(), b.cols());
    for (int i = 0; i < a.rows(); ++i)
        for (int k = 0; k < a.cols(); ++k)
            ah.at(i, k) = spec_a.apply(a.at(i, k));
    for (int k = 0; k < b.rows(); ++k)
        for (int j = 0; j < b.cols(); ++j)
            bh.at(k, j) = spec_b.apply(b.at(k, j));
    for (int i = 0; i < a.rows(); ++i) {
        for (int k = 0; k < a.cols(); ++k) {
            const float av = ah.at(i, k);
            for (int j = 0; j < b.cols(); ++j)
                d.at(i, j) += av * bh.at(k, j);
        }
    }
    return d;
}

Matrix<float>
wmmaOuter(const Matrix<float> &a, const Matrix<float> &b,
          const Matrix<float> *c, const QuantSpec &spec_a,
          const QuantSpec &spec_b)
{
    DSTC_ASSERT(a.cols() == b.rows());
    Matrix<float> d(a.rows(), b.cols());
    if (c) {
        DSTC_ASSERT(c->rows() == d.rows() && c->cols() == d.cols());
        d = *c;
    }
    // FEOP: a rank-1 update per k; per output element the adds still
    // land in increasing-k order, matching wmmaInner bitwise. B rows
    // are quantized once per k instead of once per (i, k).
    Matrix<float> bh(b.rows(), b.cols());
    for (int k = 0; k < b.rows(); ++k)
        for (int j = 0; j < b.cols(); ++j)
            bh.at(k, j) = spec_b.apply(b.at(k, j));
    for (int k = 0; k < a.cols(); ++k) {
        for (int i = 0; i < a.rows(); ++i) {
            float av = spec_a.apply(a.at(i, k));
            if (av == 0.0f)
                continue;
            for (int j = 0; j < b.cols(); ++j)
                d.at(i, j) += av * bh.at(k, j);
        }
    }
    return d;
}

} // namespace dstc
