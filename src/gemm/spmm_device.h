/**
 * @file
 * Device-level SpMM (sparse A x dense B): the real-matrix workload
 * of the ultra-sparse regime (GNN adjacency, SuiteSparse-style
 * inputs). Two A-side storage formats share one kernel model:
 *
 *  - narrow (8x1 vectors): each 8-row strip scans its level-1
 *    vector-bitmap words by popcount/ctz and issues one OHMMA A-chunk
 *    per non-empty vector against the dense B rows — empty vectors
 *    cost nothing beyond the word scan, and the encoded footprint is
 *    proportional to the non-zeros;
 *  - wide (32-wide two-level): the SpGEMM machinery with a fully
 *    dense B side, which wins back at DNN-style densities where the
 *    32x32 tiles are well filled.
 *
 * Every functional path here (narrow, wide, and the scalar
 * reference) accumulates each output cell's products in ascending-k
 * order from identically quantized operands, so the results are
 * bitwise identical across formats and worker counts.
 */
#ifndef DSTC_GEMM_SPMM_DEVICE_H
#define DSTC_GEMM_SPMM_DEVICE_H

#include "gemm/sparsity_profile.h"
#include "gemm/spgemm_device.h"
#include "sparse/narrow_tile.h"
#include "sparse/two_level.h"
#include "tensor/matrix.h"
#include "timing/memory_model.h"
#include "timing/stats.h"

namespace dstc {

/** Output of a device-level SpMM run. */
struct SpmmResult
{
    Matrix<float> d; ///< valid only when options.functional
    KernelStats stats;
};

/**
 * The dual-side sparse Tensor Core SpMM kernel model. Reuses
 * SpGemmOptions (dtype, functional, num_workers, tile_k for the wide
 * format's K chunking); the narrow/wide format choice is the
 * caller's — the backend layer drives it off SpmmFormat and the
 * cost model.
 */
class SpmmDevice
{
  public:
    explicit SpmmDevice(const GpuConfig &cfg);

    /** D = A x B with A in the narrow-tile (8x1) encoding. */
    SpmmResult multiplyNarrow(const NarrowTileMatrix &a,
                              const Matrix<float> &b,
                              const QuantSpec &spec_b,
                              const SpGemmOptions &options = {}) const;

    /**
     * D = A x B with A in the 32-wide two-level encoding
     * (tile_m x tile_k, Major::Col) and B dense.
     */
    SpmmResult multiplyWide(const TwoLevelBitmapMatrix &a,
                            const Matrix<float> &b,
                            const QuantSpec &spec_b,
                            const SpGemmOptions &options = {}) const;

    /**
     * Narrow-format timing from an A-side popcount profile at strip
     * (tile = 8) granularity. The executed narrow kernel reports
     * identical stats for the matrix the profile came from — both
     * routes fold the same per-strip (vectors, nnz) counts through
     * one shared routine, so plan-stage format selection sees
     * exactly what execution would produce.
     */
    KernelStats timeNarrowFromProfile(const SparsityProfile &a,
                                      int64_t n,
                                      const SpGemmOptions &options =
                                          {}) const;

    /**
     * Wide-format timing from an A-side profile at warp-tile
     * (tile = 32) granularity: the SpGEMM profile model against a
     * dense B profile, with the B/memory side charged as a raw dense
     * k x n operand instead of a two-level encoding.
     */
    KernelStats timeWideFromProfile(const SparsityProfile &a,
                                    int64_t n,
                                    const SpGemmOptions &options =
                                        {}) const;

    const GpuConfig &config() const { return cfg_; }

  private:
    KernelStats
    narrowTimeFromCounts(const std::vector<int64_t> &strip_vectors,
                         const std::vector<int64_t> &strip_nnz,
                         int64_t m, int64_t n, int64_t k,
                         DataType dtype) const;

    GpuConfig cfg_;
    MemoryModel memory_model_;
};

/**
 * Scalar narrow-tile SpMM reference, compiled into the test-only
 * `dstc_reference` library: scalar NarrowTileMatrix::encode plus a
 * serial strip-major multiply in the same ascending-(column, row)
 * accumulation order as the word path. The equivalence tests and
 * bench/micro_spmm pin SpmmDevice::multiplyNarrow bitwise to this
 * for every worker count and datatype.
 */
Matrix<float> refSpmmNarrow(const Matrix<float> &a,
                            const Matrix<float> &b, DataType dtype);

} // namespace dstc

#endif // DSTC_GEMM_SPMM_DEVICE_H
