/**
 * @file
 * Device-level bitmap SpGEMM (Sec. III-C): tiles the M x N output
 * into warp tiles, iterates K in chunks, skips empty tiles via the
 * two-level warp-bitmap, and folds per-warp cycles into a kernel
 * time through the SM scheduler and the memory model.
 */
#ifndef DSTC_GEMM_SPGEMM_DEVICE_H
#define DSTC_GEMM_SPGEMM_DEVICE_H

#include "gemm/sparsity_profile.h"
#include "gemm/spgemm_warp.h"
#include "sparse/two_level.h"
#include "tensor/matrix.h"
#include "timing/memory_model.h"
#include "timing/stats.h"

namespace dstc {

/** Knobs of the device-level SpGEMM execution. */
struct SpGemmOptions
{
    int tile_m = 32; ///< warp-tile rows (accumulator = tile_m x tile_n)
    int tile_n = 32; ///< warp-tile cols
    int tile_k = 32; ///< K extent of one two-level A/B tile

    /** Use the warp-bitmap to skip empty tiles (two-level format). */
    bool two_level = true;

    /**
     * Operand datatype of the modeled datapath. The functional paths
     * take the authoritative QuantSpec off the encodings (multiply()
     * builds it from this field; multiplyEncoded trusts the operands
     * it is given); the profile-only timing path uses this field
     * directly — narrower lanes shrink the encoded operand traffic
     * and the int8/int4 pipes double/quadruple the MAC rate.
     */
    DataType dtype = DataType::Fp16;

    /** Compute values (tests/examples) or only time (big sweeps). */
    bool functional = true;

    /** Use the cycle-accurate accumulation-buffer simulator. */
    bool detailed_merge = false;

    /**
     * Worker threads of the (ti, tj) output-tile loop: 0 uses the
     * process-shared pool (all hardware threads), 1 runs serially in
     * the caller, N caps the parallelism at N threads. Results and
     * stats are bitwise identical for every setting — per-tile
     * outcomes are reduced in tile order.
     */
    int num_workers = 0;

    /**
     * Write D back bitmap-encoded when that is smaller than dense.
     * Off by default: the GEMM contract of the evaluation returns a
     * dense D (the next layer's GEMM re-encodes its own operands),
     * and the paper's high-sparsity speedups saturate consistently
     * with a dense write-back. Enable for fused sparse pipelines.
     */
    bool sparse_output = false;
};

/** Output of a device-level SpGEMM run. */
struct SpGemmResult
{
    Matrix<float> d;   ///< valid only when options.functional
    KernelStats stats;
};

/** The dual-side sparse Tensor Core SpGEMM kernel model. */
class SpGemmDevice
{
  public:
    explicit SpGemmDevice(const GpuConfig &cfg);

    /**
     * D = A x B on the dual-side sparse Tensor Core. Inputs are dense
     * logical matrices; the engine encodes them into the two-level
     * bitmap format (A column-major, B row-major within tiles), which
     * is charged to the memory model as the operands' footprint.
     */
    SpGemmResult multiply(const Matrix<float> &a, const Matrix<float> &b,
                          const SpGemmOptions &options = {}) const;

    /**
     * D = A x B over operands already in the two-level bitmap format
     * (A tiled tile_m x tile_k column-major, B tiled tile_k x tile_n
     * row-major). This is the encode-once / multiply-many entry
     * point: weights are typically encoded offline (see
     * sparse/serialize.h) and reused across inferences.
     */
    SpGemmResult multiplyEncoded(const TwoLevelBitmapMatrix &a,
                                 const TwoLevelBitmapMatrix &b,
                                 const SpGemmOptions &options = {}) const;

    /**
     * Timing-only execution from popcount profiles (see
     * gemm/sparsity_profile.h): the path used by the large sweeps
     * and the model benchmarks, where operand values are irrelevant.
     * Both profiles must share the K dimension; @p a groups tile the
     * M dimension and @p b groups tile N.
     */
    KernelStats timeFromProfiles(const SparsityProfile &a,
                                 const SparsityProfile &b,
                                 const SpGemmOptions &options = {}) const;

    const GpuConfig &config() const { return cfg_; }

  private:
    GpuConfig cfg_;
    SpGemmWarpEngine warp_engine_;
    MemoryModel memory_model_;
};

} // namespace dstc

#endif // DSTC_GEMM_SPGEMM_DEVICE_H
