#include "gemm/spgemm_device.h"

#include <algorithm>

#include "common/bitutil.h"
#include "timing/scheduler.h"

namespace dstc {

namespace {

/**
 * Fixed per-tile-pair pipeline cost: shared-memory operand staging
 * and accumulator spill/fill between K chunks. Amortized over the
 * SpWMMA's 32 k-steps this is small, but it keeps fully-sparse tiles
 * from looking free when they still had to be scheduled.
 */
constexpr int64_t kTileOverheadCycles = 4;

} // namespace

SpGemmDevice::SpGemmDevice(const GpuConfig &cfg)
    : cfg_(cfg), warp_engine_(cfg), memory_model_(cfg)
{
}

SpGemmResult
SpGemmDevice::multiply(const Matrix<float> &a, const Matrix<float> &b,
                       const SpGemmOptions &options) const
{
    DSTC_ASSERT(a.cols() == b.rows(), "SpGEMM dims: ", a.rows(), "x",
                a.cols(), " * ", b.rows(), "x", b.cols());

    // Two-level encodings: A tiled (tile_m x tile_k) column-major,
    // B tiled (tile_k x tile_n) row-major (Fig. 8b / Fig. 9).
    TwoLevelBitmapMatrix a_enc = TwoLevelBitmapMatrix::encode(
        a, options.tile_m, options.tile_k, Major::Col);
    TwoLevelBitmapMatrix b_enc = TwoLevelBitmapMatrix::encode(
        b, options.tile_k, options.tile_n, Major::Row);
    return multiplyEncoded(a_enc, b_enc, options);
}

SpGemmResult
SpGemmDevice::multiplyEncoded(const TwoLevelBitmapMatrix &a_enc,
                              const TwoLevelBitmapMatrix &b_enc,
                              const SpGemmOptions &options) const
{
    DSTC_ASSERT(a_enc.cols() == b_enc.rows(),
                "SpGEMM dims: ", a_enc.rows(), "x", a_enc.cols(), " * ",
                b_enc.rows(), "x", b_enc.cols());
    DSTC_ASSERT(a_enc.tileRows() == options.tile_m &&
                    a_enc.tileCols() == options.tile_k &&
                    b_enc.tileRows() == options.tile_k &&
                    b_enc.tileCols() == options.tile_n,
                "operand tiling must match the SpGEMM options");
    const int m = a_enc.rows(), n = b_enc.cols();

    const int tiles_m = a_enc.numTileRows();
    const int tiles_k = a_enc.numTileCols();
    const int tiles_n = b_enc.numTileCols();
    DSTC_ASSERT(tiles_k == b_enc.numTileRows());

    SpGemmResult result;
    result.stats.name = "dstc_spgemm";
    if (options.functional)
        result.d = Matrix<float>(m, n);

    // Each (output tile, K chunk) is an independent work item: the
    // kernel splits K across thread blocks for small outputs (the
    // partial accumulators merge through the same gather-scatter
    // path), so the scheduler sees chunk-level parallelism.
    std::vector<int64_t> work;
    work.reserve(static_cast<size_t>(tiles_m) * tiles_n);
    double output_nnz_estimate = 0.0;

    std::vector<std::pair<int, int>> popcs;
    for (int ti = 0; ti < tiles_m; ++ti) {
        for (int tj = 0; tj < tiles_n; ++tj) {
            const int rows = std::min(options.tile_m,
                                      m - ti * options.tile_m);
            const int cols = std::min(options.tile_n,
                                      n - tj * options.tile_n);
            Matrix<float> accum;
            if (options.functional)
                accum = Matrix<float>(rows, cols);
            double p_cell_zero = 1.0;

            for (int tk = 0; tk < tiles_k; ++tk) {
                const bool a_empty = !a_enc.tileNonEmpty(ti, tk);
                const bool b_empty = !b_enc.tileNonEmpty(tk, tj);
                if (options.two_level && (a_empty || b_empty)) {
                    // Warp-bit is 0 for one input: skip the chunk
                    // without issuing anything (Sec. III-C).
                    ++result.stats.warp_tiles_skipped;
                    continue;
                }
                ++result.stats.warp_tiles;
                const BitmapMatrix &a_tile = a_enc.tile(ti, tk);
                const BitmapMatrix &b_tile = b_enc.tile(tk, tj);

                WarpTileResult wr;
                if (options.functional) {
                    wr = warp_engine_.computeTile(
                        a_tile, b_tile, &accum, options.detailed_merge);
                } else {
                    const int kk = a_tile.cols();
                    popcs.clear();
                    for (int s = 0; s < kk; ++s)
                        popcs.emplace_back(a_tile.lineNnz(s),
                                           b_tile.lineNnz(s));
                    wr = warp_engine_.timeTile(popcs);
                }
                result.stats.mix += wr.mix;
                result.stats.merge_cycles += wr.merge_cycles;
                work.push_back(wr.cycles() + kTileOverheadCycles);

                // Track the expected output density for the sparse
                // write-back estimate.
                const int kk = a_tile.cols();
                for (int s = 0; s < kk; ++s) {
                    double pa = static_cast<double>(a_tile.lineNnz(s)) /
                                rows;
                    double pb = static_cast<double>(b_tile.lineNnz(s)) /
                                cols;
                    p_cell_zero *= 1.0 - pa * pb;
                }
            }
            output_nnz_estimate +=
                (1.0 - p_cell_zero) * rows * cols;

            if (options.functional) {
                for (int r = 0; r < rows; ++r)
                    for (int c = 0; c < cols; ++c)
                        result.d.at(ti * options.tile_m + r,
                                    tj * options.tile_n + c) =
                            accum.at(r, c);
            }
        }
    }

    // Compute time: LPT makespan of output-tile work over sub-cores,
    // derated by the kernel's achievable issue efficiency.
    int64_t makespan = lptMakespan(work, cfg_.totalSubcores());
    result.stats.compute_us =
        static_cast<double>(makespan) /
        (cfg_.clock_ghz * 1e3 * cfg_.sparse_issue_efficiency);

    // Memory time: the sparse encodings are the operands' footprint;
    // D is written bitmap-encoded when smaller (gather-scatter
    // write-back, Fig. 7) and dense FP16 otherwise.
    double bytes_a = static_cast<double>(a_enc.encodedBytes());
    double bytes_b = static_cast<double>(b_enc.encodedBytes());
    double d_dense = static_cast<double>(m) * n * 2.0;
    double d_sparse =
        static_cast<double>(m) * n / 8.0 + output_nnz_estimate * 2.0;
    double bytes_d = options.sparse_output
                         ? std::min(d_dense, d_sparse)
                         : d_dense;
    result.stats.dram_bytes = memory_model_.gemmTrafficBytes(
        m, n, bytes_a, bytes_b, bytes_d);
    result.stats.memory_us =
        memory_model_.dramTimeUs(result.stats.dram_bytes);
    result.stats.launch_us = cfg_.kernel_launch_us;
    result.stats.bound = result.stats.compute_us > result.stats.memory_us
                             ? Bound::Compute
                             : Bound::Memory;
    return result;
}

KernelStats
SpGemmDevice::timeFromProfiles(const SparsityProfile &a,
                               const SparsityProfile &b,
                               const SpGemmOptions &options) const
{
    DSTC_ASSERT(a.k() == b.k(), "profile K mismatch");
    DSTC_ASSERT(a.tile() == options.tile_m && b.tile() == options.tile_n,
                "profile tiling must match the SpGEMM options");
    const int64_t k = a.k();
    const int tiles_m = a.groups();
    const int tiles_n = b.groups();
    const int tiles_k =
        static_cast<int>(ceilDiv(k, static_cast<int64_t>(options.tile_k)));
    const SpWmmaShape shape = warp_engine_.shape();
    MergeCostModel merge_model(cfg_.accum_banks, cfg_.operand_collector);

    KernelStats stats;
    stats.name = "dstc_spgemm";

    // Per-(group, k-chunk) tile non-zeros for the warp-bitmap skip.
    auto tile_nnz = [&](const SparsityProfile &p) {
        std::vector<int64_t> nnz(
            static_cast<size_t>(p.groups()) * tiles_k);
        for (int g = 0; g < p.groups(); ++g)
            for (int tk = 0; tk < tiles_k; ++tk)
                nnz[static_cast<size_t>(g) * tiles_k + tk] =
                    p.tileNnz(g, tk, options.tile_k);
        return nnz;
    };
    const auto a_tile_nnz = tile_nnz(a);
    const auto b_tile_nnz = tile_nnz(b);

    std::vector<int64_t> work;
    work.reserve(static_cast<size_t>(tiles_m) * tiles_n);
    double output_nnz_estimate = 0.0;
    const double tile_cells =
        static_cast<double>(options.tile_m) * options.tile_n;

    for (int ti = 0; ti < tiles_m; ++ti) {
        for (int tj = 0; tj < tiles_n; ++tj) {
            double p_cell_zero = 1.0;
            for (int tk = 0; tk < tiles_k; ++tk) {
                const bool a_empty =
                    a_tile_nnz[static_cast<size_t>(ti) * tiles_k + tk] ==
                    0;
                const bool b_empty =
                    b_tile_nnz[static_cast<size_t>(tj) * tiles_k + tk] ==
                    0;
                if (options.two_level && (a_empty || b_empty)) {
                    ++stats.warp_tiles_skipped;
                    continue;
                }
                ++stats.warp_tiles;
                const int64_t k_lo =
                    static_cast<int64_t>(tk) * options.tile_k;
                const int64_t k_hi =
                    std::min(k, k_lo + options.tile_k);
                int64_t issued = 0, accesses = 0, bohmma = 0;
                for (int64_t kk = k_lo; kk < k_hi; ++kk) {
                    const int na = a.count(ti, kk);
                    const int nb = b.count(tj, kk);
                    if (na == 0 || nb == 0)
                        continue;
                    stats.mix.popc += 2;
                    ++bohmma;
                    const int enabled = enabledOhmmas(na, nb, shape);
                    issued += enabled;
                    stats.mix.ohmma_skipped +=
                        shape.ohmmasPerSet() - enabled;
                    accesses += static_cast<int64_t>(na) * nb;
                    p_cell_zero *= 1.0 - static_cast<double>(na) * nb /
                                             tile_cells;
                }
                stats.mix.bohmma += bohmma;
                stats.mix.ohmma_issued += issued;
                const int64_t issue_cycles = issued + bohmma;
                const int64_t scalar_cycles = bohmma + 2;
                const int64_t merge_cycles = static_cast<int64_t>(
                    merge_model.tileCycles(accesses, issued));
                stats.merge_cycles += merge_cycles;
                work.push_back(std::max({issue_cycles, merge_cycles,
                                         scalar_cycles}) +
                               kTileOverheadCycles);
            }
            output_nnz_estimate += (1.0 - p_cell_zero) * tile_cells;
        }
    }

    int64_t makespan = lptMakespan(work, cfg_.totalSubcores());
    stats.compute_us =
        static_cast<double>(makespan) /
        (cfg_.clock_ghz * 1e3 * cfg_.sparse_issue_efficiency);

    const int64_t m = static_cast<int64_t>(tiles_m) * options.tile_m;
    const int64_t n = static_cast<int64_t>(tiles_n) * options.tile_n;
    const double bytes_a =
        static_cast<double>(a.encodedBytes(options.tile_k));
    const double bytes_b =
        static_cast<double>(b.encodedBytes(options.tile_k));
    const double d_dense = static_cast<double>(m) * n * 2.0;
    const double d_sparse = static_cast<double>(m) * n / 8.0 +
                            output_nnz_estimate * 2.0;
    const double bytes_d = options.sparse_output
                               ? std::min(d_dense, d_sparse)
                               : d_dense;
    MemoryModel memory_model(cfg_);
    stats.dram_bytes =
        memory_model.gemmTrafficBytes(m, n, bytes_a, bytes_b, bytes_d);
    stats.memory_us = memory_model.dramTimeUs(stats.dram_bytes);
    stats.launch_us = cfg_.kernel_launch_us;
    stats.bound = stats.compute_us > stats.memory_us ? Bound::Compute
                                                     : Bound::Memory;
    return stats;
}

} // namespace dstc
