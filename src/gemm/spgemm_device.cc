#include "gemm/spgemm_device.h"

#include <algorithm>

#include "common/bitutil.h"
#include "core/thread_pool.h"
#include "timing/scheduler.h"

namespace dstc {

namespace {

/**
 * Fixed per-tile-pair pipeline cost: shared-memory operand staging
 * and accumulator spill/fill between K chunks. Amortized over the
 * SpWMMA's 32 k-steps this is small, but it keeps fully-sparse tiles
 * from looking free when they still had to be scheduled.
 */
constexpr int64_t kTileOverheadCycles = 4;

/**
 * Everything one (ti, tj) output tile contributes to the kernel
 * stats. Workers fill one outcome per tile concurrently; the caller
 * reduces them serially in tile order, so the aggregated stats (and
 * every floating-point sum) are bitwise identical to the serial
 * loop regardless of worker count.
 */
struct TileOutcome
{
    InstructionMix mix;
    int64_t merge_cycles = 0;
    int64_t warp_tiles = 0;
    int64_t warp_tiles_skipped = 0;
    std::vector<int64_t> work; ///< per surviving k-chunk, in tk order
    double p_cell_zero = 1.0;
    int rows = 0, cols = 0; ///< actual (clipped) tile dimensions
};

} // namespace

SpGemmDevice::SpGemmDevice(const GpuConfig &cfg)
    : cfg_(cfg), warp_engine_(cfg), memory_model_(cfg)
{
}

SpGemmResult
SpGemmDevice::multiply(const Matrix<float> &a, const Matrix<float> &b,
                       const SpGemmOptions &options) const
{
    DSTC_ASSERT(a.cols() == b.rows(), "SpGEMM dims: ", a.rows(), "x",
                a.cols(), " * ", b.rows(), "x", b.cols());

    // Two-level encodings: A tiled (tile_m x tile_k) column-major,
    // B tiled (tile_k x tile_n) row-major (Fig. 8b / Fig. 9). The
    // per-matrix QuantSpec fills each side's quantized value lane.
    const QuantSpec spec_a = QuantSpec::forValues(
        options.dtype, a.data().data(), a.data().size());
    const QuantSpec spec_b = QuantSpec::forValues(
        options.dtype, b.data().data(), b.data().size());
    TwoLevelBitmapMatrix a_enc = TwoLevelBitmapMatrix::encode(
        a, options.tile_m, options.tile_k, Major::Col, spec_a);
    TwoLevelBitmapMatrix b_enc = TwoLevelBitmapMatrix::encode(
        b, options.tile_k, options.tile_n, Major::Row, spec_b);
    return multiplyEncoded(a_enc, b_enc, options);
}

SpGemmResult
SpGemmDevice::multiplyEncoded(const TwoLevelBitmapMatrix &a_enc,
                              const TwoLevelBitmapMatrix &b_enc,
                              const SpGemmOptions &options) const
{
    DSTC_ASSERT(a_enc.cols() == b_enc.rows(),
                "SpGEMM dims: ", a_enc.rows(), "x", a_enc.cols(), " * ",
                b_enc.rows(), "x", b_enc.cols());
    DSTC_ASSERT(a_enc.tileRows() == options.tile_m &&
                    a_enc.tileCols() == options.tile_k &&
                    b_enc.tileRows() == options.tile_k &&
                    b_enc.tileCols() == options.tile_n,
                "operand tiling must match the SpGEMM options");
    const int m = a_enc.rows(), n = b_enc.cols();

    // The encodings carry the authoritative datatype: their quantized
    // value lanes were filled at encode time, so options.dtype is
    // only advisory here.
    const QuantSpec &spec_a = a_enc.spec();
    const QuantSpec &spec_b = b_enc.spec();
    DSTC_ASSERT(spec_a.dtype == spec_b.dtype,
                "operand datatypes must match: ",
                dataTypeToken(spec_a.dtype), " vs ",
                dataTypeToken(spec_b.dtype));
    const DataType dtype = spec_a.dtype;

    const int tiles_m = a_enc.numTileRows();
    const int tiles_k = a_enc.numTileCols();
    const int tiles_n = b_enc.numTileCols();
    DSTC_ASSERT(tiles_k == b_enc.numTileRows());

    SpGemmResult result;
    result.stats.name = "dstc_spgemm";
    if (options.functional)
        result.d = Matrix<float>(m, n);
    float *d_base =
        options.functional ? result.d.data().data() : nullptr;

    // Each (ti, tj) output tile is independent: its accumulator is a
    // disjoint region of D and its stats contribution is a pure
    // function of the operand tiles. The loop is partitioned over
    // the worker pool; outcomes reduce serially in tile order below.
    const int64_t total_tiles =
        static_cast<int64_t>(tiles_m) * tiles_n;
    std::vector<TileOutcome> outcomes(
        static_cast<size_t>(total_tiles));

    auto run_tile = [&](int64_t t) {
        const int ti = static_cast<int>(t / tiles_n);
        const int tj = static_cast<int>(t % tiles_n);
        TileOutcome &out = outcomes[static_cast<size_t>(t)];
        out.work.reserve(static_cast<size_t>(tiles_k));
        out.rows = std::min(options.tile_m, m - ti * options.tile_m);
        out.cols = std::min(options.tile_n, n - tj * options.tile_n);
        // The warp tile accumulates straight into its region of D —
        // no per-tile staging matrix, no copy-out.
        float *accum =
            d_base
                ? d_base +
                      static_cast<size_t>(ti) * options.tile_m * n +
                      static_cast<size_t>(tj) * options.tile_n
                : nullptr;
        thread_local WarpScratch scratch;
        thread_local std::vector<std::pair<int, int>> popcs;

        for (int tk = 0; tk < tiles_k; ++tk) {
            const bool a_empty = !a_enc.tileNonEmpty(ti, tk);
            const bool b_empty = !b_enc.tileNonEmpty(tk, tj);
            if (options.two_level && (a_empty || b_empty)) {
                // Warp-bit is 0 for one input: skip the chunk
                // without issuing anything (Sec. III-C).
                ++out.warp_tiles_skipped;
                continue;
            }
            ++out.warp_tiles;
            const BitmapMatrix &a_tile = a_enc.tile(ti, tk);
            const BitmapMatrix &b_tile = b_enc.tile(tk, tj);

            WarpTileResult wr;
            if (options.functional) {
                wr = warp_engine_.computeTile(a_tile, b_tile, accum,
                                              n,
                                              options.detailed_merge,
                                              scratch);
            } else {
                const int kk = a_tile.cols();
                popcs.clear();
                for (int s = 0; s < kk; ++s)
                    popcs.emplace_back(a_tile.lineNnz(s),
                                       b_tile.lineNnz(s));
                wr = warp_engine_.timeTile(popcs);
            }
            out.mix += wr.mix;
            out.merge_cycles += wr.merge_cycles;
            out.work.push_back(wr.cycles() + kTileOverheadCycles);

            // Track the expected output density for the sparse
            // write-back estimate — only needed when the write-back
            // may actually be bitmap-encoded.
            if (options.sparse_output) {
                const int kk = a_tile.cols();
                for (int s = 0; s < kk; ++s) {
                    double pa =
                        static_cast<double>(a_tile.lineNnz(s)) /
                        out.rows;
                    double pb =
                        static_cast<double>(b_tile.lineNnz(s)) /
                        out.cols;
                    out.p_cell_zero *= 1.0 - pa * pb;
                }
            }
        }
    };
    int max_workers = 1;
    ThreadPool *pool = resolveTilePool(options.num_workers, &max_workers);
    parallelFor(pool, total_tiles, max_workers, run_tile);

    // Deterministic reduction: tile order, independent of which
    // worker computed what.
    std::vector<int64_t> work;
    work.reserve(static_cast<size_t>(total_tiles));
    double output_nnz_estimate = 0.0;
    for (const TileOutcome &out : outcomes) {
        result.stats.mix += out.mix;
        result.stats.merge_cycles += out.merge_cycles;
        result.stats.warp_tiles += out.warp_tiles;
        result.stats.warp_tiles_skipped += out.warp_tiles_skipped;
        work.insert(work.end(), out.work.begin(), out.work.end());
        output_nnz_estimate +=
            (1.0 - out.p_cell_zero) * out.rows * out.cols;
    }

    // Integer datatypes accumulate integer codes (exact in FP32 below
    // 2^24); the physical scale sa * sb is applied once per output
    // element here, after all accumulation, so the scaling cost and
    // the determinism guarantee are both independent of tile/worker
    // partitioning.
    const float out_scale = QuantSpec::outputScale(spec_a, spec_b);
    if (options.functional && out_scale != 1.0f) {
        float *dd = result.d.data().data();
        const size_t cells = static_cast<size_t>(m) * n;
        for (size_t i = 0; i < cells; ++i)
            dd[i] *= out_scale;
    }

    // Compute time: LPT makespan of output-tile work over sub-cores,
    // derated by the kernel's achievable issue efficiency. The int8 /
    // int4 pipes retire 2x / 4x the MACs per OHMMA slot.
    int64_t makespan = lptMakespan(work, cfg_.totalSubcores());
    result.stats.compute_us =
        static_cast<double>(makespan) /
        (cfg_.clock_ghz * 1e3 * cfg_.sparse_issue_efficiency *
         dataTypeComputeScale(dtype));

    // Memory time: the sparse encodings are the operands' footprint
    // (their packed value lanes already reflect the datatype width);
    // D is written bitmap-encoded when smaller (gather-scatter
    // write-back, Fig. 7) and dense at the output lane width
    // otherwise.
    double bytes_a = static_cast<double>(a_enc.encodedBytes());
    double bytes_b = static_cast<double>(b_enc.encodedBytes());
    double d_dense =
        static_cast<double>(m) * n * dataTypeOutputBytes(dtype);
    double d_sparse = static_cast<double>(m) * n / 8.0 +
                      output_nnz_estimate * dataTypeOutputBytes(dtype);
    double bytes_d = options.sparse_output
                         ? std::min(d_dense, d_sparse)
                         : d_dense;
    result.stats.dram_bytes = memory_model_.gemmTrafficBytes(
        m, n, bytes_a, bytes_b, bytes_d);
    result.stats.memory_us =
        memory_model_.dramTimeUs(result.stats.dram_bytes);
    result.stats.launch_us = cfg_.kernel_launch_us;
    result.stats.bound = result.stats.compute_us > result.stats.memory_us
                             ? Bound::Compute
                             : Bound::Memory;
    return result;
}

KernelStats
SpGemmDevice::timeFromProfiles(const SparsityProfile &a,
                               const SparsityProfile &b,
                               const SpGemmOptions &options) const
{
    DSTC_ASSERT(a.k() == b.k(), "profile K mismatch");
    DSTC_ASSERT(a.tile() == options.tile_m && b.tile() == options.tile_n,
                "profile tiling must match the SpGEMM options");
    const int64_t k = a.k();
    const int tiles_m = a.groups();
    const int tiles_n = b.groups();
    const int tiles_k =
        static_cast<int>(ceilDiv(k, static_cast<int64_t>(options.tile_k)));
    const SpWmmaShape shape = warp_engine_.shape();
    MergeCostModel merge_model(cfg_.accum_banks, cfg_.operand_collector);

    KernelStats stats;
    stats.name = "dstc_spgemm";

    // Per-(group, k-chunk) tile non-zeros for the warp-bitmap skip.
    auto tile_nnz = [&](const SparsityProfile &p) {
        std::vector<int64_t> nnz(
            static_cast<size_t>(p.groups()) * tiles_k);
        for (int g = 0; g < p.groups(); ++g)
            for (int tk = 0; tk < tiles_k; ++tk)
                nnz[static_cast<size_t>(g) * tiles_k + tk] =
                    p.tileNnz(g, tk, options.tile_k);
        return nnz;
    };
    const auto a_tile_nnz = tile_nnz(a);
    const auto b_tile_nnz = tile_nnz(b);

    const double tile_cells =
        static_cast<double>(options.tile_m) * options.tile_n;

    const int64_t total_tiles =
        static_cast<int64_t>(tiles_m) * tiles_n;
    std::vector<TileOutcome> outcomes(
        static_cast<size_t>(total_tiles));

    auto run_tile = [&](int64_t t) {
        const int ti = static_cast<int>(t / tiles_n);
        const int tj = static_cast<int>(t % tiles_n);
        TileOutcome &out = outcomes[static_cast<size_t>(t)];
        out.work.reserve(static_cast<size_t>(tiles_k));
        for (int tk = 0; tk < tiles_k; ++tk) {
            const bool a_empty =
                a_tile_nnz[static_cast<size_t>(ti) * tiles_k + tk] ==
                0;
            const bool b_empty =
                b_tile_nnz[static_cast<size_t>(tj) * tiles_k + tk] ==
                0;
            if (options.two_level && (a_empty || b_empty)) {
                ++out.warp_tiles_skipped;
                continue;
            }
            ++out.warp_tiles;
            const int64_t k_lo =
                static_cast<int64_t>(tk) * options.tile_k;
            const int64_t k_hi = std::min(k, k_lo + options.tile_k);
            int64_t issued = 0, accesses = 0, bohmma = 0;
            for (int64_t kk = k_lo; kk < k_hi; ++kk) {
                const int na = a.count(ti, kk);
                const int nb = b.count(tj, kk);
                if (na == 0 || nb == 0)
                    continue;
                out.mix.popc += 2;
                ++bohmma;
                const int enabled = enabledOhmmas(na, nb, shape);
                issued += enabled;
                out.mix.ohmma_skipped +=
                    shape.ohmmasPerSet() - enabled;
                accesses += static_cast<int64_t>(na) * nb;
                out.p_cell_zero *= 1.0 - static_cast<double>(na) * nb /
                                             tile_cells;
            }
            out.mix.bohmma += bohmma;
            out.mix.ohmma_issued += issued;
            const int64_t issue_cycles = issued + bohmma;
            const int64_t scalar_cycles = bohmma + 2;
            const int64_t merge_cycles = static_cast<int64_t>(
                merge_model.tileCycles(accesses, issued));
            out.merge_cycles += merge_cycles;
            out.work.push_back(std::max({issue_cycles, merge_cycles,
                                         scalar_cycles}) +
                               kTileOverheadCycles);
        }
    };
    int max_workers = 1;
    ThreadPool *pool = resolveTilePool(options.num_workers, &max_workers);
    parallelFor(pool, total_tiles, max_workers, run_tile);

    std::vector<int64_t> work;
    work.reserve(static_cast<size_t>(total_tiles));
    double output_nnz_estimate = 0.0;
    for (const TileOutcome &out : outcomes) {
        stats.mix += out.mix;
        stats.merge_cycles += out.merge_cycles;
        stats.warp_tiles += out.warp_tiles;
        stats.warp_tiles_skipped += out.warp_tiles_skipped;
        work.insert(work.end(), out.work.begin(), out.work.end());
        output_nnz_estimate += (1.0 - out.p_cell_zero) * tile_cells;
    }

    int64_t makespan = lptMakespan(work, cfg_.totalSubcores());
    stats.compute_us =
        static_cast<double>(makespan) /
        (cfg_.clock_ghz * 1e3 * cfg_.sparse_issue_efficiency *
         dataTypeComputeScale(options.dtype));

    const int64_t m = static_cast<int64_t>(tiles_m) * options.tile_m;
    const int64_t n = static_cast<int64_t>(tiles_n) * options.tile_n;
    const double bytes_a =
        static_cast<double>(a.encodedBytes(options.tile_k, options.dtype));
    const double bytes_b =
        static_cast<double>(b.encodedBytes(options.tile_k, options.dtype));
    const double out_bytes = dataTypeOutputBytes(options.dtype);
    const double d_dense = static_cast<double>(m) * n * out_bytes;
    const double d_sparse = static_cast<double>(m) * n / 8.0 +
                            output_nnz_estimate * out_bytes;
    const double bytes_d = options.sparse_output
                               ? std::min(d_dense, d_sparse)
                               : d_dense;
    MemoryModel memory_model(cfg_);
    stats.dram_bytes =
        memory_model.gemmTrafficBytes(m, n, bytes_a, bytes_b, bytes_d);
    stats.memory_us = memory_model.dramTimeUs(stats.dram_bytes);
    stats.launch_us = cfg_.kernel_launch_us;
    stats.bound = stats.compute_us > stats.memory_us ? Bound::Compute
                                                     : Bound::Memory;
    return stats;
}

} // namespace dstc
