/**
 * @file
 * Per-warp-tile popcount profiles: the minimal information the
 * timing model needs about an operand — for every (tile line group,
 * k) pair, how many non-zeros the 32-element bitmap line holds.
 *
 * Profiles can be extracted from real matrices / lowered feature
 * maps, or synthesized directly (uniform or clustered patterns)
 * without materializing the operand, which keeps the 4096^3 sweeps
 * of Fig. 21 cheap.
 */
#ifndef DSTC_GEMM_SPARSITY_PROFILE_H
#define DSTC_GEMM_SPARSITY_PROFILE_H

#include <cstdint>
#include <vector>

#include "common/datatype.h"
#include "common/rng.h"
#include "im2col/bitmap_im2col.h"
#include "tensor/matrix.h"

namespace dstc {

class TwoLevelBitmapMatrix;

/** Popcount profile of one GEMM operand at warp-tile granularity. */
class SparsityProfile
{
  public:
    /**
     * @param groups    number of tile line groups (ceil(M/tile) for
     *                  the A side, ceil(N/tile) for B)
     * @param k         shared K dimension (elements)
     * @param tile      elements per line (warp-tile edge, 32)
     * @param extent    true extent of the grouped dimension (rows
     *                  for an A-side profile, cols for B). 0 means
     *                  "tile-aligned": groups * tile.
     */
    SparsityProfile(int groups, int64_t k, int tile,
                    int64_t extent = 0);

    /** Popcount of line (group g, k-step kk). */
    int
    count(int g, int64_t kk) const
    {
        return counts_[static_cast<size_t>(g) * k_ + kk];
    }

    void
    setCount(int g, int64_t kk, int value)
    {
        counts_[static_cast<size_t>(g) * k_ + kk] =
            static_cast<uint16_t>(value);
    }

    int groups() const { return groups_; }
    int64_t k() const { return k_; }
    int tile() const { return tile_; }

    /**
     * True extent of the grouped dimension (M for an A-side profile,
     * N for B) as recorded at construction — not the tile-padded
     * groups() * tile(). Lets KernelRequest::gemm(profile, profile)
     * carry the real GEMM shape to the dense/cusparse estimates
     * instead of a ceil/32*32 inflation.
     */
    int64_t extent() const { return extent_; }

    /** Non-zeros in the (g, tk) two-level tile (tile_k k-steps). */
    int64_t tileNnz(int g, int tk, int tile_k) const;

    /** Total non-zeros. */
    int64_t totalNnz() const;

    /** Lines actually present in group @p g: tile() except for the
     *  clipped last group of a ragged extent. */
    int
    groupSpan(int g) const
    {
        const int64_t lo = static_cast<int64_t>(g) * tile_;
        return static_cast<int>(
            extent_ - lo < tile_ ? extent_ - lo : tile_);
    }

    /** Non-zeros of one tile line group (all k). */
    int64_t groupNnz(int g) const;

    /**
     * Exact non-zero fraction of group @p g over its true span — the
     * per-tile-row density Method::Hybrid partitions on. Pure
     * popcount arithmetic: no operand decode, no extra pass.
     */
    double groupDensity(int g) const;

    /**
     * Per-tile density histogram: bucket b counts the groups with
     * density in [b/bins, (b+1)/bins) (density 1.0 lands in the last
     * bucket). The request-level view of how non-uniform an operand
     * is — a one-bucket histogram means splitting cannot help.
     */
    std::vector<int> densityHistogram(int bins) const;

    /**
     * Slice: the profile restricted to @p groups (ascending group
     * indices). Because only the last group of a profile may be
     * clipped, a clipped group is only selectable in the last
     * position; the slice records the true extent of the selected
     * spans. This is how Method::Hybrid builds per-class operand
     * views without touching values.
     */
    SparsityProfile selectGroups(const std::vector<int> &groups) const;

    /**
     * Two-level encoded footprint in bytes: warp bitmap + element
     * bitmaps and values (at @p dtype lane width, FP16 by default)
     * of non-empty tiles.
     */
    size_t encodedBytes(int tile_k,
                        DataType dtype = DataType::Fp16) const;

    // -- constructors from real operands ------------------------------

    /** Profile of the A operand (lines are 32-row column slices).
     *  Element-wise; retained as the word path's test reference. */
    static SparsityProfile fromMatrixA(const Matrix<float> &a, int tile);

    /** Profile of the B operand (lines are 32-col row slices).
     *  Element-wise; retained as the word path's test reference. */
    static SparsityProfile fromMatrixB(const Matrix<float> &b, int tile);

    /**
     * Word-parallel fromMatrixA: bitmap words built 64 elements at a
     * time (column words via 64x64 block transpose), counts read off
     * by POPC. Identical output; this is what the plan paths use.
     */
    static SparsityProfile fromMatrixAWord(const Matrix<float> &a,
                                           int tile);

    /** Word-parallel fromMatrixB (row words + POPC). Identical
     *  output to fromMatrixB. */
    static SparsityProfile fromMatrixBWord(const Matrix<float> &b,
                                           int tile);

    /** Profile of a lowered feature map as the A operand. */
    static SparsityProfile fromLowered(const LoweredFeatureMap &lfm,
                                       int tile);

    /**
     * Profile read off an already-encoded two-level A operand: the
     * per-line counts come straight from the tiles' packing offsets
     * (O(1) per line, no value pass and no decode). Identical to
     * fromMatrixA of the matrix the encoding came from. This is how
     * plans estimate pre-encoded requests without running the
     * kernel.
     */
    static SparsityProfile fromEncodedA(const TwoLevelBitmapMatrix &a);

    /** Two-level B-side counterpart (per tile-column groups). */
    static SparsityProfile fromEncodedB(const TwoLevelBitmapMatrix &b);

    // -- synthetic generators -----------------------------------------

    /** Fully dense profile of an (rows x k) A-side operand. */
    static SparsityProfile denseA(int64_t rows, int64_t k, int tile);

    /**
     * Random A-side profile at a target density. @p cluster >= 1
     * concentrates the non-zeros: inside an active region the local
     * density is cluster * density and a matching fraction of
     * regions is entirely empty (the non-uniform distribution of
     * Fig. 6). cluster = 1 is the uniform Bernoulli pattern.
     */
    static SparsityProfile randomA(int64_t rows, int64_t k, int tile,
                                   double density, double cluster,
                                   Rng &rng);

  private:
    int groups_;
    int64_t k_;
    int tile_;
    int64_t extent_;
    std::vector<uint16_t> counts_;
};

} // namespace dstc

#endif // DSTC_GEMM_SPARSITY_PROFILE_H
