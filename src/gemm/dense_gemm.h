/**
 * @file
 * Dense tensor-core GEMM: the functional tiled-WMMA execution used
 * for validation plus the analytic device timing shared by the
 * CUTLASS-like baseline.
 */
#ifndef DSTC_GEMM_DENSE_GEMM_H
#define DSTC_GEMM_DENSE_GEMM_H

#include <cstdint>

#include "common/datatype.h"
#include "tensor/matrix.h"
#include "timing/gpu_config.h"
#include "timing/memory_model.h"
#include "timing/stats.h"

namespace dstc {

/** Output of a dense GEMM run. */
struct DenseGemmResult
{
    Matrix<float> d;
    KernelStats stats;
};

/** Dense GEMM on the (inner- or outer-product) Tensor Core model. */
class DenseGemmDevice
{
  public:
    explicit DenseGemmDevice(const GpuConfig &cfg);

    /**
     * Functional tiled execution (16x16x16 WMMA tiles) plus timing.
     * @p outer_product selects the OWMMA order; results are bitwise
     * identical either way (see gemm/wmma.h). Operands quantize
     * through the specs (FP16 by default); both must share a
     * datatype. Integer specs accumulate codes and apply the
     * deferred sa * sb output scale once after the K loop — dense
     * and dual-sparse integer results are bitwise equal.
     */
    DenseGemmResult multiply(const Matrix<float> &a,
                             const Matrix<float> &b,
                             bool outer_product = false,
                             const QuantSpec &spec_a = {},
                             const QuantSpec &spec_b = {}) const;

    /**
     * Timing-only estimate for an m x n x k dense GEMM at the
     * configured dense efficiency (operands and output stored at the
     * datatype's lane width; int8/int4 double/quadruple the MAC
     * rate).
     */
    KernelStats timeOnly(int64_t m, int64_t n, int64_t k,
                         DataType dtype = DataType::Fp16) const;

  private:
    GpuConfig cfg_;
    MemoryModel memory_model_;
};

} // namespace dstc

#endif // DSTC_GEMM_DENSE_GEMM_H
