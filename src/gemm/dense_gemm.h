/**
 * @file
 * Dense tensor-core GEMM: the functional tiled-WMMA execution used
 * for validation plus the analytic device timing shared by the
 * CUTLASS-like baseline.
 */
#ifndef DSTC_GEMM_DENSE_GEMM_H
#define DSTC_GEMM_DENSE_GEMM_H

#include <cstdint>

#include "tensor/matrix.h"
#include "timing/gpu_config.h"
#include "timing/memory_model.h"
#include "timing/stats.h"

namespace dstc {

/** Output of a dense GEMM run. */
struct DenseGemmResult
{
    Matrix<float> d;
    KernelStats stats;
};

/** Dense GEMM on the (inner- or outer-product) Tensor Core model. */
class DenseGemmDevice
{
  public:
    explicit DenseGemmDevice(const GpuConfig &cfg);

    /**
     * Functional tiled execution (16x16x16 WMMA tiles) plus timing.
     * @p outer_product selects the OWMMA order; results are bitwise
     * identical either way (see gemm/wmma.h).
     */
    DenseGemmResult multiply(const Matrix<float> &a,
                             const Matrix<float> &b,
                             bool outer_product = false) const;

    /**
     * Timing-only estimate for an m x n x k dense GEMM at the
     * configured dense efficiency (FP16 operands, FP16 output).
     */
    KernelStats timeOnly(int64_t m, int64_t n, int64_t k) const;

  private:
    GpuConfig cfg_;
    MemoryModel memory_model_;
};

} // namespace dstc

#endif // DSTC_GEMM_DENSE_GEMM_H
