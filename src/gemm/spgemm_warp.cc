#include "gemm/spgemm_warp.h"

#include "common/bitutil.h"
#include "common/fp16.h"
#include "common/logging.h"

namespace dstc {

namespace {

void
checkTilePair(const BitmapMatrix &a_tile, const BitmapMatrix &b_tile,
              const SpWmmaShape &shape)
{
    DSTC_ASSERT(a_tile.major() == Major::Col,
                "A tile must be column-major encoded");
    DSTC_ASSERT(b_tile.major() == Major::Row,
                "B tile must be row-major encoded");
    DSTC_ASSERT(a_tile.cols() == b_tile.rows(), "k mismatch: ",
                a_tile.cols(), " vs ", b_tile.rows());
    DSTC_ASSERT(a_tile.rows() <= shape.m && b_tile.cols() <= shape.n,
                "warp tile exceeds SpWMMA shape");
}

} // namespace

SpGemmWarpEngine::SpGemmWarpEngine(const GpuConfig &cfg)
    : cfg_(cfg),
      merge_model_(cfg.accum_banks, cfg.operand_collector)
{
}

WarpTileResult
SpGemmWarpEngine::computeTile(const BitmapMatrix &a_tile,
                              const BitmapMatrix &b_tile, float *accum,
                              int ld, bool detailed_merge,
                              WarpScratch &scratch) const
{
    checkTilePair(a_tile, b_tile, shape_);
    const int m = a_tile.rows();
    const int n = b_tile.cols();
    const int k = a_tile.cols();

    WarpTileResult result;
    // The positions only matter when values are merged or the exact
    // bank simulator consumes the address stream; timing-only calls
    // run on popcounts alone.
    const bool need_positions = accum != nullptr || detailed_merge;
    if (need_positions)
        scratch.reserveTile(m, n);
    if (detailed_merge)
        scratch.trace.instr_addrs.clear();

    for (int step = 0; step < k; ++step) {
        // The hardware POPCs the A-column / B-row bitmaps (Fig. 15).
        const int popc_a = a_tile.lineNnz(step);
        const int popc_b = b_tile.lineNnz(step);
        if (popc_a == 0 || popc_b == 0)
            continue; // k-step compacted away (Sec. III-B3)

        // The instruction mix of one SpWMMA set, computed
        // arithmetically: two POPCs, one BOHMMA, and the Fig. 15
        // predication of the 8 OHMMAs.
        result.mix.popc += 2;
        ++result.mix.bohmma;
        const int enabled = enabledOhmmas(popc_a, popc_b, shape_);
        result.mix.ohmma_issued += enabled;
        result.mix.ohmma_skipped += shape_.ohmmasPerSet() - enabled;
        const int64_t products = static_cast<int64_t>(popc_a) * popc_b;
        result.macs += products;
        result.merge_accesses += products;
        if (!need_positions)
            continue;

        // Word-parallel bitmap scan: the B positions land in the
        // reusable arena (they are re-read once per A non-zero); the
        // A side is consumed in ctz order straight off its line
        // words, fused with the scatter loop below. The detailed
        // bank simulator additionally needs the A positions as an
        // array for its chunked address stream.
        b_tile.linePositionsInto(step, 0, n, scratch.pos_b.data());
        if (detailed_merge)
            a_tile.linePositionsInto(step, 0, m,
                                     scratch.pos_a.data());

        if (accum) {
            // FP16-rounded operands come pre-quantized from the
            // encoding. Each (row, col) pair is touched once per
            // k-step, so the per-cell FP32 accumulation order is the
            // k order — the chunked reference path sums identically
            // (ctz iteration visits positions in increasing order,
            // exactly like the positions array).
            const auto val_a = a_tile.lineValuesFp16(step);
            const auto val_b = b_tile.lineValuesFp16(step);
            const auto a_words = a_tile.lineBits(step);
            int ia = 0;
            for (size_t w = 0; w < a_words.size(); ++w) {
                uint64_t word = a_words[w];
                const int base = static_cast<int>(w) << 6;
                while (word) {
                    const int pos = base + std::countr_zero(word);
                    word &= word - 1;
                    const float av = val_a[ia++];
                    float *row =
                        accum + static_cast<size_t>(pos) * ld;
                    for (int ib = 0; ib < popc_b; ++ib)
                        row[scratch.pos_b[ib]] += av * val_b[ib];
                }
            }
        }

        if (detailed_merge) {
            // The bank simulator consumes one address list per OHMMA
            // chunk pair, in issue order (tile-local addresses).
            for (int ac = 0; ac < ceilDiv(popc_a, shape_.a_chunk);
                 ++ac) {
                const int a_lo = ac * shape_.a_chunk;
                const int a_hi =
                    std::min(popc_a, a_lo + shape_.a_chunk);
                for (int bc = 0; bc < ceilDiv(popc_b, shape_.b_chunk);
                     ++bc) {
                    const int b_lo = bc * shape_.b_chunk;
                    const int b_hi =
                        std::min(popc_b, b_lo + shape_.b_chunk);
                    std::vector<int> addrs;
                    addrs.reserve(
                        static_cast<size_t>(a_hi - a_lo) *
                        (b_hi - b_lo));
                    for (int ia = a_lo; ia < a_hi; ++ia)
                        for (int ib = b_lo; ib < b_hi; ++ib)
                            addrs.push_back(scratch.pos_a[ia] * n +
                                            scratch.pos_b[ib]);
                    scratch.trace.instr_addrs.push_back(
                        std::move(addrs));
                }
            }
        }
    }

    result.issue_cycles = result.mix.tensorCycles();
    // Scalar pipe: one slot per surviving (non-compacted) k-step for
    // the POPC/predicate work, plus the per-tile occupancy-bitmap
    // AND that drives the k-compaction.
    result.scalar_cycles = result.mix.bohmma + 2;
    if (detailed_merge) {
        AccumBufferSim sim(cfg_.accum_banks, cfg_.operand_collector,
                           cfg_.collector_window);
        result.merge_cycles = sim.simulateSparse(scratch.trace);
    } else {
        result.merge_cycles = static_cast<int64_t>(
            merge_model_.tileCycles(result.merge_accesses,
                                    result.mix.ohmma_issued));
    }
    return result;
}

WarpTileResult
SpGemmWarpEngine::computeTile(const BitmapMatrix &a_tile,
                              const BitmapMatrix &b_tile,
                              Matrix<float> *accum,
                              bool detailed_merge) const
{
    if (accum) {
        DSTC_ASSERT(accum->rows() == a_tile.rows() &&
                    accum->cols() == b_tile.cols());
    }
    thread_local WarpScratch scratch;
    float *base = accum ? accum->data().data() : nullptr;
    const int ld = accum ? accum->cols() : 0;
    return computeTile(a_tile, b_tile, base, ld, detailed_merge,
                       scratch);
}

WarpTileResult
SpGemmWarpEngine::timeTile(
    const std::vector<std::pair<int, int>> &popcs) const
{
    WarpTileResult result;
    for (const auto &[popc_a, popc_b] : popcs) {
        if (popc_a == 0 || popc_b == 0)
            continue;
        result.mix.popc += 2;
        ++result.mix.bohmma;
        const int enabled = enabledOhmmas(popc_a, popc_b, shape_);
        result.mix.ohmma_issued += enabled;
        result.mix.ohmma_skipped += shape_.ohmmasPerSet() - enabled;
        result.macs += static_cast<int64_t>(popc_a) * popc_b;
        result.merge_accesses += static_cast<int64_t>(popc_a) * popc_b;
    }
    result.issue_cycles = result.mix.tensorCycles();
    result.scalar_cycles = result.mix.bohmma + 2;
    result.merge_cycles = static_cast<int64_t>(merge_model_.tileCycles(
        result.merge_accesses, result.mix.ohmma_issued));
    return result;
}

} // namespace dstc
