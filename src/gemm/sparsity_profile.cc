#include "gemm/sparsity_profile.h"

#include <algorithm>
#include <cmath>

#include "common/bitutil.h"
#include "common/logging.h"
#include "sparse/two_level.h"
#include "sparse/word_encode.h"

namespace dstc {

SparsityProfile::SparsityProfile(int groups, int64_t k, int tile,
                                 int64_t extent)
    : groups_(groups), k_(k), tile_(tile),
      extent_(extent > 0 ? extent
                         : static_cast<int64_t>(groups) * tile),
      counts_(static_cast<size_t>(groups) * k, 0)
{
    DSTC_ASSERT(groups > 0 && k > 0 && tile > 0);
    DSTC_ASSERT(extent_ <= static_cast<int64_t>(groups) * tile &&
                extent_ > static_cast<int64_t>(groups - 1) * tile,
                "extent ", extent_, " inconsistent with ", groups,
                " groups of ", tile);
}

int64_t
SparsityProfile::tileNnz(int g, int tk, int tile_k) const
{
    const int64_t lo = static_cast<int64_t>(tk) * tile_k;
    const int64_t hi = std::min(k_, lo + tile_k);
    int64_t total = 0;
    for (int64_t kk = lo; kk < hi; ++kk)
        total += count(g, kk);
    return total;
}

int64_t
SparsityProfile::totalNnz() const
{
    int64_t total = 0;
    for (uint16_t c : counts_)
        total += c;
    return total;
}

int64_t
SparsityProfile::groupNnz(int g) const
{
    DSTC_ASSERT(g >= 0 && g < groups_);
    int64_t total = 0;
    for (int64_t kk = 0; kk < k_; ++kk)
        total += count(g, kk);
    return total;
}

double
SparsityProfile::groupDensity(int g) const
{
    const double elems =
        static_cast<double>(groupSpan(g)) * static_cast<double>(k_);
    return elems > 0 ? groupNnz(g) / elems : 0.0;
}

std::vector<int>
SparsityProfile::densityHistogram(int bins) const
{
    DSTC_ASSERT(bins > 0);
    std::vector<int> histogram(bins, 0);
    for (int g = 0; g < groups_; ++g) {
        int b = static_cast<int>(groupDensity(g) * bins);
        histogram[std::min(b, bins - 1)] += 1;
    }
    return histogram;
}

SparsityProfile
SparsityProfile::selectGroups(const std::vector<int> &groups) const
{
    DSTC_ASSERT(!groups.empty(), "selectGroups needs >= 1 group");
    for (size_t i = 0; i < groups.size(); ++i) {
        DSTC_ASSERT(groups[i] >= 0 && groups[i] < groups_);
        DSTC_ASSERT(i == 0 || groups[i - 1] < groups[i],
                    "selectGroups wants ascending group indices");
        // Only the last group of a profile may be clipped, so a
        // clipped group must also come last in the selection (the
        // constructor's extent invariant).
        DSTC_ASSERT(i + 1 == groups.size() ||
                        groupSpan(groups[i]) == tile_,
                    "clipped group ", groups[i],
                    " selected before the end");
    }
    const int selected = static_cast<int>(groups.size());
    const int64_t extent =
        static_cast<int64_t>(selected - 1) * tile_ +
        groupSpan(groups.back());
    SparsityProfile slice(selected, k_, tile_, extent);
    for (int i = 0; i < selected; ++i)
        for (int64_t kk = 0; kk < k_; ++kk)
            slice.setCount(i, kk, count(groups[i], kk));
    return slice;
}

size_t
SparsityProfile::encodedBytes(int tile_k, DataType dtype) const
{
    const int64_t tiles_k = ceilDiv(k_, static_cast<int64_t>(tile_k));
    size_t bytes =
        ceilDiv(static_cast<size_t>(groups_) * tiles_k, size_t{8});
    for (int g = 0; g < groups_; ++g) {
        for (int64_t tk = 0; tk < tiles_k; ++tk) {
            int64_t nnz = tileNnz(g, static_cast<int>(tk), tile_k);
            if (nnz == 0)
                continue;
            bytes += static_cast<size_t>(tile_) * tile_k / 8; // bitmap
            bytes += dataTypePackedBytes(dtype,
                                         static_cast<size_t>(nnz));
        }
    }
    return bytes;
}

SparsityProfile
SparsityProfile::fromMatrixA(const Matrix<float> &a, int tile)
{
    const int groups = ceilDiv(a.rows(), tile);
    SparsityProfile profile(groups, a.cols(), tile, a.rows());
    for (int g = 0; g < groups; ++g) {
        const int r0 = g * tile;
        const int r1 = std::min(a.rows(), r0 + tile);
        for (int kk = 0; kk < a.cols(); ++kk) {
            int nnz = 0;
            for (int r = r0; r < r1; ++r)
                nnz += a.at(r, kk) != 0.0f;
            profile.setCount(g, kk, nnz);
        }
    }
    return profile;
}

SparsityProfile
SparsityProfile::fromMatrixB(const Matrix<float> &b, int tile)
{
    const int groups = ceilDiv(b.cols(), tile);
    SparsityProfile profile(groups, b.rows(), tile, b.cols());
    for (int g = 0; g < groups; ++g) {
        const int c0 = g * tile;
        const int c1 = std::min(b.cols(), c0 + tile);
        for (int kk = 0; kk < b.rows(); ++kk) {
            int nnz = 0;
            for (int c = c0; c < c1; ++c)
                nnz += b.at(kk, c) != 0.0f;
            profile.setCount(g, kk, nnz);
        }
    }
    return profile;
}

SparsityProfile
SparsityProfile::fromMatrixAWord(const Matrix<float> &a, int tile)
{
    // Lines are columns: column words come out of the block
    // transpose, then each (group, k) count is one masked POPC.
    const int groups = ceilDiv(a.rows(), tile);
    SparsityProfile profile(groups, a.cols(), tile, a.rows());
    int wpl = 0;
    const std::vector<uint64_t> bits =
        wordEncodeBits(a, Major::Col, &wpl);
    for (int kk = 0; kk < a.cols(); ++kk) {
        const size_t base = static_cast<size_t>(kk) * wpl * 64;
        for (int g = 0; g < groups; ++g) {
            const int r0 = g * tile;
            const int r1 = std::min(a.rows(), r0 + tile);
            profile.setCount(
                g, kk, popcountRange(bits, base + r0, base + r1));
        }
    }
    return profile;
}

SparsityProfile
SparsityProfile::fromMatrixBWord(const Matrix<float> &b, int tile)
{
    // Lines are rows: row words are one branchless pass over the
    // row-major storage, counts one masked POPC per (group, k).
    const int groups = ceilDiv(b.cols(), tile);
    SparsityProfile profile(groups, b.rows(), tile, b.cols());
    int wpl = 0;
    const std::vector<uint64_t> bits =
        wordEncodeBits(b, Major::Row, &wpl);
    for (int kk = 0; kk < b.rows(); ++kk) {
        const size_t base = static_cast<size_t>(kk) * wpl * 64;
        for (int g = 0; g < groups; ++g) {
            const int c0 = g * tile;
            const int c1 = std::min(b.cols(), c0 + tile);
            profile.setCount(
                g, kk, popcountRange(bits, base + c0, base + c1));
        }
    }
    return profile;
}

SparsityProfile
SparsityProfile::fromLowered(const LoweredFeatureMap &lfm, int tile)
{
    const int groups = ceilDiv(lfm.rows, tile);
    SparsityProfile profile(groups, lfm.cols, tile, lfm.rows);
    for (int j = 0; j < lfm.cols; ++j) {
        const auto &bits = lfm.columns[j].bits;
        for (int g = 0; g < groups; ++g) {
            const size_t lo = static_cast<size_t>(g) * tile;
            const size_t hi = std::min(
                static_cast<size_t>(lfm.rows), lo + tile);
            profile.setCount(g, j, popcountRange(bits, lo, hi));
        }
    }
    return profile;
}

SparsityProfile
SparsityProfile::fromEncodedA(const TwoLevelBitmapMatrix &a)
{
    // A tiles are packed Major::Col: each tile line is one k-step's
    // column slice, so lineNnz reads the profile count directly.
    SparsityProfile profile(a.numTileRows(), a.cols(), a.tileRows(),
                            a.rows());
    for (int g = 0; g < a.numTileRows(); ++g) {
        for (int tk = 0; tk < a.numTileCols(); ++tk) {
            const BitmapMatrix &t = a.tile(g, tk);
            const int64_t k0 =
                static_cast<int64_t>(tk) * a.tileCols();
            for (int line = 0; line < t.numLines(); ++line)
                profile.setCount(g, k0 + line, t.lineNnz(line));
        }
    }
    return profile;
}

SparsityProfile
SparsityProfile::fromEncodedB(const TwoLevelBitmapMatrix &b)
{
    // B tiles are packed Major::Row: each tile line is one k-step's
    // row slice across the group's columns.
    SparsityProfile profile(b.numTileCols(), b.rows(), b.tileCols(),
                            b.cols());
    for (int g = 0; g < b.numTileCols(); ++g) {
        for (int tk = 0; tk < b.numTileRows(); ++tk) {
            const BitmapMatrix &t = b.tile(tk, g);
            const int64_t k0 =
                static_cast<int64_t>(tk) * b.tileRows();
            for (int line = 0; line < t.numLines(); ++line)
                profile.setCount(g, k0 + line, t.lineNnz(line));
        }
    }
    return profile;
}

SparsityProfile
SparsityProfile::denseA(int64_t rows, int64_t k, int tile)
{
    const int groups =
        static_cast<int>(ceilDiv(rows, static_cast<int64_t>(tile)));
    SparsityProfile profile(groups, k, tile, rows);
    for (int g = 0; g < groups; ++g) {
        const int span = static_cast<int>(
            std::min<int64_t>(tile, rows - static_cast<int64_t>(g) * tile));
        for (int64_t kk = 0; kk < k; ++kk)
            profile.setCount(g, kk, span);
    }
    return profile;
}

SparsityProfile
SparsityProfile::randomA(int64_t rows, int64_t k, int tile,
                         double density, double cluster, Rng &rng)
{
    DSTC_ASSERT(density >= 0.0 && density <= 1.0);
    DSTC_ASSERT(cluster >= 1.0);
    const int groups =
        static_cast<int>(ceilDiv(rows, static_cast<int64_t>(tile)));
    SparsityProfile profile(groups, k, tile, rows);

    // Clustered pattern: a region (one warp tile: tile rows x tile
    // k-steps) is active with probability density/local; active
    // regions carry density*cluster locally so the global density is
    // preserved. Region-level clustering is what pruned checkpoints
    // exhibit (dead neurons/heads) and what the warp-bitmap skips.
    const double local = std::min(1.0, density * cluster);
    const double p_active = local > 0.0 ? density / local : 0.0;

    for (int g = 0; g < groups; ++g) {
        const int span = static_cast<int>(
            std::min<int64_t>(tile, rows - static_cast<int64_t>(g) * tile));
        for (int64_t kb = 0; kb < k; kb += tile) {
            if (!rng.bernoulli(p_active))
                continue;
            const int64_t kb_hi = std::min(k, kb + tile);
            for (int64_t kk = kb; kk < kb_hi; ++kk) {
                int nnz = 0;
                for (int i = 0; i < span; ++i)
                    nnz += rng.bernoulli(local);
                profile.setCount(g, kk, nnz);
            }
        }
    }
    return profile;
}

} // namespace dstc
