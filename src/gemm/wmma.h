/**
 * @file
 * Functional models of the warp-level matrix-multiply primitives.
 *
 * wmmaInner executes in the inner-product (FEDP) order of the
 * original Tensor Core (Fig. 3a); wmmaOuter executes the same
 * multiply as a sequence of rank-1 outer-product updates (FEOP,
 * Fig. 4a). Both quantize operands through FP16 and accumulate in
 * FP32 in increasing-k order, so their results are bitwise equal —
 * the architectural claim that swapping FEDP for FEOP preserves the
 * dense semantics (Sec. V-A1), proven in tests.
 */
#ifndef DSTC_GEMM_WMMA_H
#define DSTC_GEMM_WMMA_H

#include "common/datatype.h"
#include "tensor/matrix.h"

namespace dstc {

/**
 * D = A x B (+C) with FEDP (inner-product) evaluation order.
 * Operands quantize through the given specs (FP16 by default);
 * integer specs accumulate raw codes — the caller applies the
 * deferred sa * sb output scale after its last accumulation.
 */
Matrix<float> wmmaInner(const Matrix<float> &a, const Matrix<float> &b,
                        const Matrix<float> *c = nullptr,
                        const QuantSpec &spec_a = {},
                        const QuantSpec &spec_b = {});

/** D = A x B (+C) with FEOP (outer-product, rank-1 update) order. */
Matrix<float> wmmaOuter(const Matrix<float> &a, const Matrix<float> &b,
                        const Matrix<float> *c = nullptr,
                        const QuantSpec &spec_a = {},
                        const QuantSpec &spec_b = {});

} // namespace dstc

#endif // DSTC_GEMM_WMMA_H
