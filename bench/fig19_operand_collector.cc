/**
 * @file
 * Fig. 19: accumulation-buffer merge cycles with and without the
 * operand collector. Runs the cycle-accurate bank simulator on the
 * writeback traces of real warp tiles across densities, and also
 * reproduces the 3-instruction illustrative schedule of the figure.
 */
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "gemm/spgemm_warp.h"
#include "tensor/matrix.h"
#include "timing/accum_buffer.h"

using namespace dstc;

int
main()
{
    std::printf("== Fig. 19: operand collector ablation ==\n\n");

    // The illustrative schedule: three instructions, each fully
    // conflicted internally, disjoint across banks (4 ports).
    {
        MergeTrace trace;
        trace.instr_addrs.push_back({0, 4, 8});
        trace.instr_addrs.push_back({1, 5, 9});
        trace.instr_addrs.push_back({2, 6, 10});
        AccumBufferSim without_oc(4, false, 8);
        AccumBufferSim with_oc(4, true, 8);
        std::printf("figure example (3 instrs, 4 ports): without OC "
                    "%lld cycles, with OC %lld cycles (paper: 7 -> "
                    "4-ish)\n\n",
                    static_cast<long long>(
                        without_oc.simulateSparse(trace)),
                    static_cast<long long>(
                        with_oc.simulateSparse(trace)));
    }

    // Real warp-tile merges across densities on the V100 config.
    GpuConfig with_cfg = GpuConfig::v100();
    GpuConfig without_cfg = with_cfg;
    without_cfg.operand_collector = false;
    SpGemmWarpEngine with_engine(with_cfg);
    SpGemmWarpEngine without_engine(without_cfg);

    TextTable table;
    table.setHeader({"tile sparsity (A=B)", "merge cycles w/o OC",
                     "merge cycles w/ OC", "OC speedup",
                     "issue cycles (for overlap)"});
    Rng rng(19);
    for (double sparsity : {0.0, 0.25, 0.5, 0.75, 0.9, 0.99}) {
        Matrix<float> a = randomSparseMatrix(32, 32, sparsity, rng);
        Matrix<float> b = randomSparseMatrix(32, 32, sparsity, rng);
        BitmapMatrix a_bm = BitmapMatrix::encode(a, Major::Col);
        BitmapMatrix b_bm = BitmapMatrix::encode(b, Major::Row);
        WarpTileResult without = without_engine.computeTile(
            a_bm, b_bm, nullptr, /*detailed_merge=*/true);
        WarpTileResult with = with_engine.computeTile(
            a_bm, b_bm, nullptr, /*detailed_merge=*/true);
        table.addRow(
            {fmtDouble(sparsity, 2),
             std::to_string(without.merge_cycles),
             std::to_string(with.merge_cycles),
             fmtSpeedup(static_cast<double>(without.merge_cycles) /
                        std::max<int64_t>(1, with.merge_cycles)),
             std::to_string(with.issue_cycles)});
    }
    table.print();
    std::printf("\nWith the collector the merge stays at or below the "
                "issue rate, so it overlaps; without it the merge "
                "serializes and becomes the bottleneck (Sec. V-B2).\n");
    return 0;
}
