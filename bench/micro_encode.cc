/**
 * @file
 * Micro-benchmark of the word-parallel operand-encode layer — the
 * stage the paper argues must be cheap enough to run online on both
 * GEMM sides. Three kinds of point:
 *
 *  - "twolevel": dense -> two-level encode of a GEMM operand pair
 *    (A column-major + B row-major, exactly what a functional
 *    dual-sparse request encodes), three ways: the element-wise
 *    scalar reference (TwoLevelBitmapMatrix::encode), the
 *    word-parallel single-thread encoder, and the pooled parallel
 *    encoder (encode_workers = 0). Reports dense GB/s through the
 *    word encoder.
 *  - "request": end-to-end dense-GEMM request latency through a
 *    Session — cold (word encode + compute) vs the old pipeline's
 *    cost (scalar encode + the same cached-compute request).
 *  - "lowering": the strided conv im2col gather, word-parallel
 *    deinterleave vs the retained per-bit probe reference, at
 *    stride 2 and 3.
 *
 * Results are written as JSON (default BENCH_encode.json; see the
 * bench_json CMake target) so every PR leaves a perf trajectory and
 * tools/check_bench.py can gate regressions in CI. `--quick` runs a
 * seconds-scale subset. Any bitwise divergence between the scalar
 * and word paths is fatal — the bench doubles as an equivalence
 * check.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/session.h"
#include "im2col/bitmap_im2col.h"
#include "model/sparsity_gen.h"
#include "sparse/word_encode.h"
#include "tensor/tensor4d.h"

using namespace dstc;
using bench::timeMs;

namespace {

struct Point
{
    std::string kind; ///< "twolevel" | "request" | "lowering"
    int m = 0, k = 0;
    double sparsity = 0.0;
    int stride = 0; ///< lowering points only
    double scalar_ms = 0.0;
    double word_ms = 0.0;
    double parallel_ms = 0.0;
    double gbps = 0.0; ///< dense bytes through the word path
    bool bitwise_equal = false;
};

/** Bit-for-bit comparison of two one-level bitmaps. */
bool
identicalBitmap(const BitmapMatrix &a, const BitmapMatrix &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols() ||
        a.major() != b.major() || a.nnz() != b.nnz())
        return false;
    for (int line = 0; line < a.numLines(); ++line) {
        const auto wa = a.lineBits(line);
        const auto wb = b.lineBits(line);
        const auto va = a.lineValues(line);
        const auto vb = b.lineValues(line);
        const auto fa = a.lineValuesFp16(line);
        const auto fb = b.lineValuesFp16(line);
        if (wa.size() != wb.size() || va.size() != vb.size())
            return false;
        if (std::memcmp(wa.data(), wb.data(),
                        wa.size() * sizeof(uint64_t)) != 0 ||
            std::memcmp(va.data(), vb.data(),
                        va.size() * sizeof(float)) != 0 ||
            std::memcmp(fa.data(), fb.data(),
                        fa.size() * sizeof(float)) != 0)
            return false;
    }
    return true;
}

/** Bit-for-bit comparison of two two-level encodings. */
bool
identicalTwoLevel(const TwoLevelBitmapMatrix &a,
                  const TwoLevelBitmapMatrix &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols() ||
        a.numTileRows() != b.numTileRows() ||
        a.numTileCols() != b.numTileCols() || a.nnz() != b.nnz() ||
        a.nonEmptyTiles() != b.nonEmptyTiles())
        return false;
    for (int tr = 0; tr < a.numTileRows(); ++tr)
        for (int tc = 0; tc < a.numTileCols(); ++tc)
            if (a.tileNonEmpty(tr, tc) != b.tileNonEmpty(tr, tc) ||
                !identicalBitmap(a.tile(tr, tc), b.tile(tr, tc)))
                return false;
    return true;
}

/**
 * One datatype point of the encode precision axis: wall time of the
 * word-parallel encode filling that datatype's value lane, the
 * dtype-aware encoded footprint of the operand pair, and the bitwise
 * pin of the word encoder against the element-wise scalar encode
 * under the same QuantSpec (serial and pooled).
 */
struct PrecisionPoint
{
    int m = 0, k = 0;
    double sparsity = 0.0;
    DataType dtype = DataType::Fp16;
    double word_ms = 0.0;
    double encoded_mb = 0.0;
    bool bitwise_equal = false;
};

PrecisionPoint
runEncodePrecisionPoint(int size, double sparsity, DataType dtype,
                        int reps)
{
    PrecisionPoint p;
    p.m = p.k = size;
    p.sparsity = sparsity;
    p.dtype = dtype;

    Rng rng(0xe4c0de ^ (static_cast<uint64_t>(sparsity * 100) << 8) ^
            static_cast<uint64_t>(size));
    Matrix<float> a = randomSparseMatrix(size, size, sparsity, rng);
    Matrix<float> b = randomSparseMatrix(size, size, sparsity, rng);
    SpGemmOptions opts; // tile_m/k/n = 32

    const QuantSpec spec_a = QuantSpec::forValues(
        dtype, a.data().data(), a.data().size());
    const QuantSpec spec_b = QuantSpec::forValues(
        dtype, b.data().data(), b.data().size());

    p.word_ms = timeMs(reps, [&] {
        wordEncodeTwoLevel(a, opts.tile_m, opts.tile_k, Major::Col, 1,
                           spec_a);
        wordEncodeTwoLevel(b, opts.tile_k, opts.tile_n, Major::Row, 1,
                           spec_b);
    });

    TwoLevelBitmapMatrix a_word = wordEncodeTwoLevel(
        a, opts.tile_m, opts.tile_k, Major::Col, 1, spec_a);
    TwoLevelBitmapMatrix b_pooled = wordEncodeTwoLevel(
        b, opts.tile_k, opts.tile_n, Major::Row, 0, spec_b);
    TwoLevelBitmapMatrix a_scalar = TwoLevelBitmapMatrix::encode(
        a, opts.tile_m, opts.tile_k, Major::Col, spec_a);
    TwoLevelBitmapMatrix b_scalar = TwoLevelBitmapMatrix::encode(
        b, opts.tile_k, opts.tile_n, Major::Row, spec_b);
    p.encoded_mb = (a_scalar.encodedBytes() +
                    b_scalar.encodedBytes()) /
                   1e6;
    p.bitwise_equal = identicalTwoLevel(a_word, a_scalar) &&
                      identicalTwoLevel(b_pooled, b_scalar);
    return p;
}

Point
runTwoLevelPoint(int size, double sparsity, int reps)
{
    Point p;
    p.kind = "twolevel";
    p.m = p.k = size;
    p.sparsity = sparsity;

    Rng rng(0xe4c0de ^ (static_cast<uint64_t>(sparsity * 100) << 8) ^
            static_cast<uint64_t>(size));
    Matrix<float> a = randomSparseMatrix(size, size, sparsity, rng);
    Matrix<float> b = randomSparseMatrix(size, size, sparsity, rng);
    SpGemmOptions opts; // tile_m/k/n = 32

    p.scalar_ms = timeMs(reps, [&] {
        TwoLevelBitmapMatrix::encode(a, opts.tile_m, opts.tile_k,
                                     Major::Col);
        TwoLevelBitmapMatrix::encode(b, opts.tile_k, opts.tile_n,
                                     Major::Row);
    });
    p.word_ms = timeMs(reps, [&] {
        wordEncodeTwoLevel(a, opts.tile_m, opts.tile_k, Major::Col,
                           1);
        wordEncodeTwoLevel(b, opts.tile_k, opts.tile_n, Major::Row,
                           1);
    });
    p.parallel_ms = timeMs(reps, [&] {
        wordEncodeTwoLevel(a, opts.tile_m, opts.tile_k, Major::Col,
                           0);
        wordEncodeTwoLevel(b, opts.tile_k, opts.tile_n, Major::Row,
                           0);
    });
    p.gbps = 2.0 * static_cast<double>(size) * size *
             sizeof(float) / (p.word_ms * 1e6);
    p.bitwise_equal =
        identicalTwoLevel(
            wordEncodeTwoLevel(a, opts.tile_m, opts.tile_k,
                               Major::Col, 1),
            TwoLevelBitmapMatrix::encode(a, opts.tile_m, opts.tile_k,
                                         Major::Col)) &&
        identicalTwoLevel(
            wordEncodeTwoLevel(b, opts.tile_k, opts.tile_n,
                               Major::Row, 0),
            TwoLevelBitmapMatrix::encode(b, opts.tile_k, opts.tile_n,
                                         Major::Row));
    return p;
}

Point
runRequestPoint(int size, double sparsity, int reps)
{
    Point p;
    p.kind = "request";
    p.m = p.k = size;
    p.sparsity = sparsity;

    Rng rng(0x9e90 ^ static_cast<uint64_t>(size));
    Matrix<float> a = randomSparseMatrix(size, size, sparsity, rng);
    Matrix<float> b = randomSparseMatrix(size, size, sparsity, rng);

    Session session;
    SessionOptions pooled_opts;
    pooled_opts.resources.encode_workers = 0; // shared pool
    Session pooled(pooled_opts);
    KernelRequest req =
        KernelRequest::gemm(a, b).withMethod(Method::DualSparse);

    // Cold run = word encode + compute (the request latency a fresh
    // operand pays); warm run = the cached-compute part alone.
    std::shared_ptr<const Matrix<float>> d_cold;
    p.word_ms = timeMs(reps, [&] {
        session.encodingCache().clear();
        d_cold = session.run(req).d;
    });
    p.parallel_ms = timeMs(reps, [&] {
        pooled.encodingCache().clear();
        pooled.run(req);
    });
    const double warm_ms =
        timeMs(reps, [&] { session.run(req); });
    SpGemmOptions opts;
    const double scalar_encode_ms = timeMs(reps, [&] {
        TwoLevelBitmapMatrix::encode(a, opts.tile_m, opts.tile_k,
                                     Major::Col);
        TwoLevelBitmapMatrix::encode(b, opts.tile_k, opts.tile_n,
                                     Major::Row);
    });
    // What the same request cost before the word rebuild: the
    // element-wise encode plus the identical dispatch + compute.
    p.scalar_ms = scalar_encode_ms + warm_ms;

    // The functional output must match a multiply over the scalar
    // encodings exactly.
    SpGemmDevice device(session.config());
    TwoLevelBitmapMatrix a_enc = TwoLevelBitmapMatrix::encode(
        a, opts.tile_m, opts.tile_k, Major::Col);
    TwoLevelBitmapMatrix b_enc = TwoLevelBitmapMatrix::encode(
        b, opts.tile_k, opts.tile_n, Major::Row);
    Matrix<float> d_ref =
        device.multiplyEncoded(a_enc, b_enc, opts).d;
    p.bitwise_equal =
        d_cold && d_cold->rows() == d_ref.rows() &&
        std::memcmp(d_cold->data().data(), d_ref.data().data(),
                    d_ref.data().size() * sizeof(float)) == 0;
    return p;
}

Point
runLoweringPoint(int hw, int stride, double sparsity, int reps)
{
    Point p;
    p.kind = "lowering";
    p.m = hw;
    p.stride = stride;
    p.sparsity = sparsity;

    Rng rng(0x10e1 ^ (static_cast<uint64_t>(stride) << 12) ^
            static_cast<uint64_t>(sparsity * 100));
    ConvShape shape;
    shape.batch = 1;
    shape.in_c = 32;
    shape.in_h = shape.in_w = hw;
    shape.out_c = 32;
    shape.kernel = 3;
    shape.stride = stride;
    shape.pad = 1;
    Tensor4d input =
        randomSparseTensor(1, 32, hw, hw, sparsity, rng);
    BitmapFeatureMap fmap = BitmapFeatureMap::encode(input);

    LoweredFeatureMap word, scalar;
    p.scalar_ms = timeMs(reps, [&] {
        scalar = im2colFromBitmap(fmap, shape, true, 1, false);
    });
    p.word_ms = timeMs(reps, [&] {
        word = im2colFromBitmap(fmap, shape, true, 1, true);
    });
    p.parallel_ms = timeMs(reps, [&] {
        im2colFromBitmap(fmap, shape, true, 0, true);
    });
    p.gbps = static_cast<double>(shape.loweredRows()) *
             shape.loweredCols() * sizeof(float) /
             (p.word_ms * 1e6);

    p.bitwise_equal = word.cols == scalar.cols;
    for (int j = 0; p.bitwise_equal && j < word.cols; ++j)
        p.bitwise_equal =
            word.columns[j].bits == scalar.columns[j].bits &&
            word.columns[j].values == scalar.columns[j].values &&
            word.columns[j].values_fp16 ==
                scalar.columns[j].values_fp16;
    return p;
}

void
writeJson(const char *path, const std::vector<Point> &points,
          const std::vector<PrecisionPoint> &precision, int reps,
          bool quick)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path);
        std::exit(1);
    }
    std::fprintf(f, "{\n  \"bench\": \"micro_encode\",\n");
    std::fprintf(f,
                 "  \"config\": {\"threads\": %d, "
                 "\"hardware_concurrency\": %u, \"reps\": %d, "
                 "\"quick\": %s,\n"
                 "    \"host_note\": \"wall-clock figures and "
                 "parallel_scaling ~ 1.0 reflect the bench "
                 "container's hardware_concurrency (1 = a single "
                 "hardware thread, where the pool cannot scale); "
                 "simulated *_us fields are machine-independent\"},"
                 "\n",
                 sharedThreadPool().numThreads(),
                 std::thread::hardware_concurrency(), reps,
                 quick ? "true" : "false");
    std::fprintf(f, "  \"points\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        std::fprintf(
            f,
            "    {\"kind\": \"%s\", \"m\": %d, \"k\": %d, "
            "\"sparsity\": %.2f, \"stride\": %d,\n"
            "     \"scalar_ms\": %.3f, \"word_ms\": %.3f, "
            "\"parallel_ms\": %.3f, \"gbps\": %.2f,\n"
            "     \"speedup_word_vs_scalar\": %.2f, "
            "\"parallel_scaling\": %.2f, \"bitwise_equal\": %s}%s\n",
            p.kind.c_str(), p.m, p.k, p.sparsity, p.stride,
            p.scalar_ms, p.word_ms, p.parallel_ms, p.gbps,
            p.scalar_ms / p.word_ms, p.word_ms / p.parallel_ms,
            p.bitwise_equal ? "true" : "false",
            i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"precision_points\": [\n");
    for (size_t i = 0; i < precision.size(); ++i) {
        const PrecisionPoint &p = precision[i];
        std::fprintf(
            f,
            "    {\"m\": %d, \"k\": %d, \"sparsity\": %.2f, "
            "\"dtype\": \"%s\",\n"
            "     \"word_ms\": %.3f, \"encoded_mb\": %.3f, "
            "\"bitwise_equal\": %s}%s\n",
            p.m, p.k, p.sparsity, dataTypeToken(p.dtype), p.word_ms,
            p.encoded_mb, p.bitwise_equal ? "true" : "false",
            i + 1 < precision.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args;
    args.out = "BENCH_encode.json";
    if (!bench::parseBenchArgs(argc, argv, "micro_encode", &args))
        return 2;
    const bool quick = args.quick;
    const int reps = args.reps;

    bench::warmProcessState(GpuConfig::v100());

    std::vector<Point> points;
    std::printf("%9s %5s %5s %7s | %9s %9s %9s | %7s %7s\n", "kind",
                "size", "sp", "stride", "scalar ms", "word ms",
                "par ms", "speedup", "GB/s");
    auto emit = [&](Point p) {
        std::printf(
            "%9s %5d %5.2f %7d | %9.3f %9.3f %9.3f | %6.2fx %7.2f%s\n",
            p.kind.c_str(), p.m, p.sparsity, p.stride, p.scalar_ms,
            p.word_ms, p.parallel_ms, p.scalar_ms / p.word_ms,
            p.gbps, p.bitwise_equal ? "" : "  [MISMATCH]");
        if (!p.bitwise_equal) {
            std::fprintf(stderr,
                         "FATAL: word-parallel encode diverges from "
                         "the scalar reference\n");
            std::exit(1);
        }
        points.push_back(std::move(p));
    };

    if (quick) {
        // CI smoke: the headline operating points at a small size.
        emit(runTwoLevelPoint(512, 0.9, reps));
        emit(runRequestPoint(256, 0.9, reps));
        emit(runLoweringPoint(28, 2, 0.9, reps));
    } else {
        // Sparsity axis of the operand-pair encode (the paper's
        // online-encode premise lives or dies here).
        for (double sp : {0.5, 0.7, 0.9, 0.95})
            emit(runTwoLevelPoint(1024, sp, reps));
        // End-to-end dense-request latency, cold encode included.
        emit(runRequestPoint(256, 0.9, reps));
        emit(runRequestPoint(512, 0.9, reps));
        // Strided lowering: the deinterleave vs the per-bit probes.
        for (int stride : {2, 3})
            for (double sp : {0.5, 0.9})
                emit(runLoweringPoint(28, stride, sp, reps));
    }

    // Precision axis: each datatype's value-lane encode, pinned
    // against the scalar encode under the same QuantSpec; the
    // footprint column shows the narrow lanes shrinking the operand
    // pair.
    std::vector<PrecisionPoint> precision;
    std::printf("\n%6s %5s %5s | %9s %10s | %6s\n", "dtype", "size",
                "sp", "word ms", "encoded MB", "equal");
    const int psize = quick ? 256 : 512;
    for (DataType dtype : {DataType::Fp16, DataType::Bf16,
                           DataType::Int8, DataType::Int4}) {
        PrecisionPoint p =
            runEncodePrecisionPoint(psize, 0.9, dtype, reps);
        precision.push_back(p);
        std::printf("%6s %5d %5.2f | %9.3f %10.3f | %6s%s\n",
                    dataTypeToken(p.dtype), p.m, p.sparsity,
                    p.word_ms, p.encoded_mb,
                    p.bitwise_equal ? "yes" : "NO",
                    p.bitwise_equal ? "" : "  [MISMATCH]");
        if (!p.bitwise_equal) {
            std::fprintf(stderr,
                         "FATAL: %s word encode diverges from the "
                         "scalar encode\n",
                         dataTypeToken(p.dtype));
            std::exit(1);
        }
    }

    writeJson(args.out, points, precision, reps, quick);
    std::printf("\nwrote %s\n", args.out);
    return 0;
}
