/**
 * @file
 * Ablation: warp-tile K-chunk size and accumulation-buffer design
 * points. Section III-B notes the warp-tile size is constrained by
 * the Tensor Core's local buffer; this bench sweeps the K-chunk
 * (two-level tile depth) and the buffer's bank count / collector
 * window to show where the paper's 32x32 / 128-bank / window-8
 * configuration sits.
 */
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "core/session.h"
#include "session_util.h"
#include "timing/accum_buffer.h"
#include "timing/merge_model.h"

using namespace dstc;

int
main()
{
    Rng rng(88);
    const int n = 1024;

    std::printf("== Ablation A: two-level tile K-depth ==\n\n");
    {
        Session session;
        TextTable table;
        table.setHeader({"tile_k", "tiles skipped", "compute (us)",
                         "encoded A bytes"});
        SparsityProfile pa =
            SparsityProfile::randomA(n, n, 32, 0.05, 8.0, rng);
        SparsityProfile pb =
            SparsityProfile::randomA(n, n, 32, 0.05, 8.0, rng);
        for (int tile_k : {8, 16, 32, 64, 128}) {
            SpGemmOptions opts;
            opts.functional = false;
            opts.tile_k = tile_k;
            KernelStats stats = bench::spgemmTime(session, pa, pb, opts);
            table.addRow({std::to_string(tile_k),
                          std::to_string(stats.warp_tiles_skipped),
                          fmtDouble(stats.compute_us, 1),
                          std::to_string(pa.encodedBytes(tile_k))});
        }
        table.print();
        std::printf("\nShallower tiles skip more but store more "
                    "bitmaps; 32 balances both (the paper's choice).\n");
    }

    std::printf("\n== Ablation B: accumulation-buffer banks ==\n\n");
    {
        TextTable table;
        table.setHeader({"banks", "merge cycles (dense-ish tile)",
                         "merge cycles (50% tile)"});
        MergeTrace dense_trace, half_trace;
        Rng trng(89);
        for (int i = 0; i < 256; ++i) {
            std::vector<int> full, half;
            for (int j = 0; j < 128; ++j)
                full.push_back(static_cast<int>(trng.uniformInt(1024)));
            for (int j = 0; j < 32; ++j)
                half.push_back(static_cast<int>(trng.uniformInt(1024)));
            dense_trace.instr_addrs.push_back(std::move(full));
            half_trace.instr_addrs.push_back(std::move(half));
        }
        for (int banks : {16, 32, 64, 128, 256}) {
            AccumBufferSim sim(banks, true, 8);
            table.addRow(
                {std::to_string(banks),
                 std::to_string(sim.simulateSparse(dense_trace)),
                 std::to_string(sim.simulateSparse(half_trace))});
        }
        table.print();
        std::printf("\n128 banks lets a fully dense OHMMA stream "
                    "retire at issue rate (256 instrs -> ~256+ "
                    "cycles); fewer banks throttle dense mode.\n");
    }

    std::printf("\n== Ablation C: operand-collector window ==\n\n");
    {
        TextTable table;
        table.setHeader({"window", "merge cycles"});
        MergeTrace trace;
        Rng trng(90);
        for (int i = 0; i < 128; ++i) {
            std::vector<int> addrs;
            for (int j = 0; j < 48; ++j)
                addrs.push_back(static_cast<int>(trng.uniformInt(1024)));
            trace.instr_addrs.push_back(std::move(addrs));
        }
        for (int window : {1, 2, 4, 8, 16}) {
            AccumBufferSim sim(128, true, window);
            table.addRow({std::to_string(window),
                          std::to_string(sim.simulateSparse(trace))});
        }
        table.print();
        std::printf("\nReturns diminish past a window of ~8, the "
                    "paper's design point (Fig. 20 queues).\n");
    }
    return 0;
}
