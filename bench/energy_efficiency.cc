/**
 * @file
 * Energy-efficiency companion to Fig. 21: energy per kernel for the
 * dense baseline vs the dual-side SpGEMM across sparsity, using the
 * per-op energy model. Supports the paper's efficiency motivation
 * (Sec. I) with the same machine constants for both designs.
 */
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "core/session.h"
#include "session_util.h"
#include "hwmodel/energy_model.h"

using namespace dstc;

int
main()
{
    Session session;
    EnergyParams params = EnergyParams::v100_12nm();
    Rng rng(33);
    const int64_t n = 2048;

    const EnergyReport dense =
        denseGemmEnergy(n, n, n, params, session.config());

    std::printf("== Energy per %lld^3 GEMM kernel (model constants: "
                "%.1f pJ/MAC, %.1f pJ/B DRAM) ==\n\n",
                static_cast<long long>(n), params.fp16_mac_pj,
                params.dram_pj_per_byte);
    TextTable table;
    table.setHeader({"sparsity (A=B)", "compute (uJ)", "merge (uJ)",
                     "DRAM (uJ)", "static (uJ)", "total (uJ)",
                     "vs dense"});
    table.addRow({"dense baseline", fmtDouble(dense.compute_uj, 0), "-",
                  fmtDouble(dense.dram_uj, 0),
                  fmtDouble(dense.static_uj, 0),
                  fmtDouble(dense.totalUj(), 0), "1.00x"});

    for (double sparsity : {0.0, 0.5, 0.75, 0.9, 0.99}) {
        SparsityProfile a = SparsityProfile::randomA(
            n, n, 32, 1.0 - sparsity, 2.0, rng);
        SparsityProfile b = SparsityProfile::randomA(
            n, n, 32, 1.0 - sparsity, 2.0, rng);
        KernelStats stats = bench::spgemmTime(session, a, b);
        EnergyReport report =
            estimateEnergy(stats, params, session.config());
        table.addRow({fmtDouble(sparsity, 2),
                      fmtDouble(report.compute_uj, 0),
                      fmtDouble(report.merge_uj, 0),
                      fmtDouble(report.dram_uj, 0),
                      fmtDouble(report.static_uj, 0),
                      fmtDouble(report.totalUj(), 0),
                      fmtSpeedup(dense.totalUj() / report.totalUj())});
    }
    table.print();
    std::printf("\nAt full density the bitmap machinery costs extra "
                "energy (BOHMMA, POPC, merge); past ~50%% dual-side "
                "sparsity the skipped MACs and smaller transfers "
                "dominate.\n");
    return 0;
}
