/**
 * @file
 * Ablation: fixed-rate structured-sparsity formats vs the dual-side
 * bitmap design across weight sparsity. The 2:4 (Ampere) and
 * vector-wise 75% [72] designs are flat lines — they exploit exactly
 * their format ratio and nothing more — while the bitmap
 * outer-product design tracks the actual sparsity (the paper's core
 * argument, Secs. I-II and VI-D).
 */
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "core/session.h"
#include "session_util.h"

using namespace dstc;

int
main()
{
    Session session;
    Rng rng(24);
    const int64_t n = 4096;
    const double dense_us = bench::denseGemmTime(session, n, n, n).timeUs();

    std::printf("== Ablation: structured formats vs dual-side bitmap "
                "(%lld^3, dense activations) ==\n\n",
                static_cast<long long>(n));
    TextTable table;
    table.setHeader({"weight sparsity", "2:4 (A100)",
                     "vector-wise 75% [72]", "ours (uniform)",
                     "ours (clustered x8)"});
    for (double sparsity : {0.5, 0.625, 0.75, 0.875, 0.9375, 0.99}) {
        const double ampere =
            bench::ampereGemmTime(session, n, n, n, sparsity).timeUs();
        const double zhu =
            bench::zhuGemmTime(session, n, n, n, sparsity).timeUs();

        SparsityProfile acts = SparsityProfile::denseA(n, n, 32);
        SparsityProfile uniform = SparsityProfile::randomA(
            n, n, 32, 1.0 - sparsity, 1.0, rng);
        SparsityProfile clustered = SparsityProfile::randomA(
            n, n, 32, 1.0 - sparsity, 8.0, rng);
        const double ours_uniform =
            bench::spgemmTime(session, acts, uniform).timeUs();
        const double ours_clustered =
            bench::spgemmTime(session, acts, clustered).timeUs();

        table.addRow({fmtDouble(sparsity, 4),
                      fmtSpeedup(dense_us / ampere),
                      fmtSpeedup(dense_us / zhu),
                      fmtSpeedup(dense_us / ours_uniform),
                      fmtSpeedup(dense_us / ours_clustered)});
    }
    table.print();
    std::printf("\nThe fixed-rate designs are flat: 2:4 tops out at "
                "~1.75x and the vector-wise design at ~1.86x, while "
                "the bitmap design keeps converting sparsity into "
                "speedup (and benefits further from the clustered "
                "patterns real pruning produces).\n");
    return 0;
}
