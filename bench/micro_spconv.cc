/**
 * @file
 * Micro-benchmark of the functional dual-sparse convolution
 * pipeline. Each point runs the same layer three ways — the retained
 * pre-word-parallel reference (ConvExecutor::runScalar: per-pixel
 * decode of the lowered map, dense profile extraction, element-wise
 * re-encode), the word-parallel single-thread path (run with
 * num_workers=1: bitmap lowering re-tiled straight into the
 * two-level operand), and the pooled parallel pipeline — across
 * sparsity operating points, layer shapes and lowering modes
 * (stride-1 word extraction vs strided bit gather, single- vs
 * dual-sparse implicit).
 *
 * Results are written as JSON (default BENCH_spconv.json; see the
 * bench_json CMake target) so every PR leaves a perf trajectory and
 * tools/check_bench.py can gate regressions in CI. `--quick` runs a
 * seconds-scale subset. Any bitwise divergence between the three
 * paths is fatal — the bench doubles as an equivalence check.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "conv/spconv.h"
#include "core/thread_pool.h"
#include "model/sparsity_gen.h"
#include "tensor/tensor4d.h"

using namespace dstc;
using bench::timeMs;

namespace {

struct Point
{
    std::string shape_name;
    ConvShape shape;
    ConvMethod method = ConvMethod::DualSparseImplicit;
    double wsp = 0.0, asp = 0.0;
    bool clustered = false; ///< pruned-style blocked weight pattern
    double scalar_ms = 0.0;
    double word_ms = 0.0;
    double parallel_ms = 0.0;
    bool bitwise_equal = false;
};

/** Output values and stats must agree bit for bit. */
bool
identical(const ConvResult &a, const ConvResult &b)
{
    return a.output.size() == b.output.size() &&
           std::memcmp(a.output.data().data(), b.output.data().data(),
                       a.output.size() * sizeof(float)) == 0 &&
           std::memcmp(&a.stats.compute_us, &b.stats.compute_us,
                       sizeof(double)) == 0 &&
           std::memcmp(&a.stats.memory_us, &b.stats.memory_us,
                       sizeof(double)) == 0 &&
           a.stats.mix.ohmma_issued == b.stats.mix.ohmma_issued &&
           a.stats.warp_tiles == b.stats.warp_tiles;
}

Point
runPoint(const char *name, const ConvShape &shape, ConvMethod method,
         double wsp, double asp, int reps, bool clustered = false)
{
    Point p;
    p.shape_name = name;
    p.shape = shape;
    p.method = method;
    p.wsp = wsp;
    p.asp = asp;
    p.clustered = clustered;

    Rng rng(0x5bc0 ^ (static_cast<uint64_t>(wsp * 100) << 8) ^
            static_cast<uint64_t>(asp * 100));
    Tensor4d input = randomSparseTensor(shape.batch, shape.in_c,
                                        shape.in_h, shape.in_w, asp,
                                        rng);
    // Clustered points model pruned weights (blocked non-zeros, the
    // Sec. VI-D pattern that lets the warp-bitmap skip whole tiles).
    Matrix<float> weights =
        clustered ? clusteredSparseMatrix(
                        shape.out_c,
                        static_cast<int>(shape.loweredCols()), wsp,
                        32, 4.0, rng)
                  : randomSparseMatrix(
                        shape.out_c,
                        static_cast<int>(shape.loweredCols()), wsp,
                        rng);

    GpuConfig cfg = GpuConfig::v100();
    ConvExecutor executor(cfg);
    ConvOptions serial;
    serial.num_workers = 1;
    ConvOptions pooled; // num_workers = 0: shared pool

    ConvResult r_scalar, r_word, r_par;
    p.scalar_ms = timeMs(reps, [&] {
        r_scalar =
            executor.runScalar(input, weights, shape, method, serial);
    });
    p.word_ms = timeMs(reps, [&] {
        r_word = executor.run(input, weights, shape, method, serial);
    });
    p.parallel_ms = timeMs(reps, [&] {
        r_par = executor.run(input, weights, shape, method, pooled);
    });

    p.bitwise_equal =
        identical(r_word, r_scalar) && identical(r_par, r_scalar);
    return p;
}

void
writeJson(const char *path, const std::vector<Point> &points,
          int reps, bool quick)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path);
        std::exit(1);
    }
    std::fprintf(f, "{\n  \"bench\": \"micro_spconv\",\n");
    std::fprintf(f,
                 "  \"config\": {\"threads\": %d, "
                 "\"hardware_concurrency\": %u, \"reps\": %d, "
                 "\"quick\": %s,\n"
                 "    \"host_note\": \"wall-clock figures and "
                 "parallel_scaling ~ 1.0 reflect the bench "
                 "container's hardware_concurrency (1 = a single "
                 "hardware thread, where the pool cannot scale); "
                 "simulated *_us fields are machine-independent\"},"
                 "\n",
                 sharedThreadPool().numThreads(),
                 std::thread::hardware_concurrency(), reps,
                 quick ? "true" : "false");
    std::fprintf(f, "  \"points\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        std::fprintf(
            f,
            "    {\"shape\": \"%s\", \"batch\": %d, \"in_c\": %d, "
            "\"hw\": %d, \"out_c\": %d, \"kernel\": %d, "
            "\"stride\": %d,\n"
            "     \"method\": \"%s\", \"wsp\": %.2f, \"asp\": %.2f, "
            "\"clustered\": %s,\n"
            "     \"scalar_ms\": %.3f, \"word_ms\": %.3f, "
            "\"parallel_ms\": %.3f,\n"
            "     \"speedup_word_vs_scalar\": %.2f, "
            "\"parallel_scaling\": %.2f, \"bitwise_equal\": %s}%s\n",
            p.shape_name.c_str(), p.shape.batch, p.shape.in_c,
            p.shape.in_h, p.shape.out_c, p.shape.kernel,
            p.shape.stride, convMethodName(p.method), p.wsp, p.asp,
            p.clustered ? "true" : "false",
            p.scalar_ms, p.word_ms, p.parallel_ms,
            p.scalar_ms / p.word_ms, p.word_ms / p.parallel_ms,
            p.bitwise_equal ? "true" : "false",
            i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

ConvShape
makeShape(int c, int hw, int oc, int stride = 1, int batch = 1)
{
    ConvShape s;
    s.batch = batch;
    s.in_c = c;
    s.in_h = s.in_w = hw;
    s.out_c = oc;
    s.kernel = 3;
    s.stride = stride;
    s.pad = 1;
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args;
    args.out = "BENCH_spconv.json";
    if (!bench::parseBenchArgs(argc, argv, "micro_spconv", &args))
        return 2;
    const bool quick = args.quick;
    const int reps = args.reps;
    const char *out = args.out;

    bench::warmProcessState(GpuConfig::v100());

    std::vector<Point> points;
    std::printf("%14s %22s %5s %5s | %9s %9s %9s | %7s %7s\n",
                "shape", "method", "wsp", "asp", "scalar ms",
                "word ms", "par ms", "speedup", "scaling");
    auto emit = [&](const char *name, const ConvShape &s,
                    ConvMethod method, double wsp, double asp,
                    bool clustered = false) {
        Point p =
            runPoint(name, s, method, wsp, asp, reps, clustered);
        points.push_back(p);
        std::printf(
            "%14s %22s %5.2f %5.2f | %9.3f %9.3f %9.3f | %6.2fx "
            "%6.2fx%s\n",
            name, convMethodName(method), wsp, asp, p.scalar_ms,
            p.word_ms, p.parallel_ms, p.scalar_ms / p.word_ms,
            p.word_ms / p.parallel_ms,
            p.bitwise_equal ? "" : "  [MISMATCH]");
        if (!p.bitwise_equal) {
            std::fprintf(stderr,
                         "FATAL: word/parallel conv result differs "
                         "from the scalar reference\n");
            std::exit(1);
        }
    };

    const ConvShape small = makeShape(32, 14, 32);
    const ConvShape mid = makeShape(32, 28, 32);
    const ConvShape wide = makeShape(64, 28, 64);
    const ConvShape strided = makeShape(32, 28, 32, 2);

    if (quick) {
        // CI smoke: one small shape at the mid and headline points.
        for (double sp : {0.8, 0.9})
            emit("conv3x3-14", small, ConvMethod::DualSparseImplicit,
                 sp, sp);
        emit("conv3x3-14-cl", small, ConvMethod::DualSparseImplicit,
             0.9, 0.9, true);
        emit("conv3x3-s2", makeShape(16, 14, 16, 2),
             ConvMethod::DualSparseImplicit, 0.9, 0.9);
    } else {
        // Sparsity axis on the mid shape (dual-side: wsp = asp).
        for (double sp : {0.5, 0.7, 0.8, 0.9, 0.95})
            emit("conv3x3-28", mid, ConvMethod::DualSparseImplicit,
                 sp, sp);
        // Shape axis at the paper's headline 90% operating point.
        emit("conv3x3-14", small, ConvMethod::DualSparseImplicit,
             0.9, 0.9);
        // Pruned-style clustered weights: the warp-bitmap skips
        // whole tiles, which the scalar reference's dense
        // decode/re-encode cannot exploit.
        emit("conv3x3-28-cl", mid, ConvMethod::DualSparseImplicit,
             0.9, 0.9, true);
        emit("conv3x3-28-cl", mid, ConvMethod::DualSparseImplicit,
             0.95, 0.95, true);
        emit("conv3x3-wide", wide, ConvMethod::DualSparseImplicit,
             0.9, 0.9);
        emit("conv3x3-b4", makeShape(16, 14, 16, 1, 4),
             ConvMethod::DualSparseImplicit, 0.9, 0.9);
        // Lowering modes: the strided word-parallel deinterleave
        // (sparsity axis + a stride-3 phase-cycling point) and the
        // single-sparse (dense-activation) implicit pipeline.
        emit("conv3x3-s2", strided, ConvMethod::DualSparseImplicit,
             0.9, 0.9);
        emit("conv3x3-s2", strided, ConvMethod::DualSparseImplicit,
             0.8, 0.8);
        emit("conv3x3-s3", makeShape(32, 28, 32, 3),
             ConvMethod::DualSparseImplicit, 0.9, 0.9);
        emit("conv3x3-28", mid, ConvMethod::SingleSparseImplicit,
             0.9, 0.5);
    }

    writeJson(out, points, reps, quick);
    std::printf("\nwrote %s\n", out);
    return 0;
}
