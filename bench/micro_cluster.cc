/**
 * @file
 * Micro-benchmark of the Cluster scheduler: throughput and placement
 * quality over device sets and policies. The workload is a serving
 * trace — the model zoo's layer batches (conv + GEMM mixed)
 * replicated as if the same models kept arriving — run over
 * homogeneous and heterogeneous device sets under each
 * PlacementPolicy.
 *
 * Each point records the *simulated* makespan (max over devices of
 * the summed kernel times placed there) and throughput, which are
 * deterministic — pure functions of the request sequence and the
 * machine configs — so the checked-in numbers are comparable across
 * CI hosts; host wall time is recorded for interest only. Placement
 * quality is the cost-model-vs-round-robin makespan ratio on the
 * heterogeneous mix (tools/check_bench.py gates it).
 *
 * Every report is also checked bitwise against a serial
 * single-Session run on the placed device's config (the cluster
 * determinism contract); any divergence aborts the bench.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/cluster.h"
#include "model/runner.h"
#include "timing/stats.h"

using namespace dstc;
using bench::nowMs;

namespace {

/** One (device set, policy) measurement. */
struct Point
{
    std::string devices; ///< e.g. "v100+future"
    std::string policy;  ///< "cost" | "rr" | "shard"
    int num_devices = 0;
    int requests = 0;
    double makespan_us = 0.0;   ///< simulated, deterministic
    double sum_time_us = 0.0;   ///< simulated, deterministic
    double throughput_rpms = 0.0; ///< requests per simulated ms
    double wall_ms = 0.0;       ///< host wall clock (informative)
    bool bitwise_equal = false; ///< vs serial single-Session runs
};

/** A named device set. */
struct DeviceSet
{
    const char *name;
    std::vector<GpuConfig> configs;
};

/** The serving trace: each zoo model's layer batch, replicated. */
std::vector<KernelRequest>
servingTrace(int replicate)
{
    std::vector<KernelRequest> requests;
    for (const DnnModel &model : {makeResnet18(), makeBertBase()}) {
        const std::vector<KernelRequest> batch =
            ModelRunner::layerRequests(
                model, ModelMethod::DualSparseImplicit, 1);
        for (int rep = 0; rep < replicate; ++rep)
            requests.insert(requests.end(), batch.begin(),
                            batch.end());
    }
    return requests;
}

bool
statsBitwiseEqual(const KernelStats &a, const KernelStats &b)
{
    return a.compute_us == b.compute_us &&
           a.memory_us == b.memory_us &&
           a.dram_bytes == b.dram_bytes &&
           a.launch_us == b.launch_us && a.bound == b.bound &&
           a.mix.hmma == b.mix.hmma &&
           a.mix.ohmma_issued == b.mix.ohmma_issued &&
           a.mix.ohmma_skipped == b.mix.ohmma_skipped &&
           a.mix.bohmma == b.mix.bohmma && a.mix.popc == b.mix.popc &&
           a.warp_tiles == b.warp_tiles &&
           a.warp_tiles_skipped == b.warp_tiles_skipped &&
           a.merge_cycles == b.merge_cycles;
}

Point
runPoint(const DeviceSet &set, PlacementPolicy policy,
         int replicate)
{
    Point p;
    p.devices = set.name;
    p.policy = placementPolicyToken(policy);
    p.num_devices = static_cast<int>(set.configs.size());

    ClusterOptions opts;
    opts.devices = set.configs;
    opts.policy = policy;
    Cluster cluster(opts);

    std::vector<KernelRequest> requests = servingTrace(replicate);
    p.requests = static_cast<int>(requests.size());

    const double t0 = nowMs();
    std::vector<KernelReport> reports = cluster.runBatch(requests);
    p.wall_ms = nowMs() - t0;

    std::vector<double> device_us(set.configs.size(), 0.0);
    for (const KernelReport &report : reports) {
        device_us[report.device] += report.stats.timeUs();
        p.sum_time_us += report.stats.timeUs();
    }
    p.makespan_us =
        *std::max_element(device_us.begin(), device_us.end());
    p.throughput_rpms = p.requests / (p.makespan_us / 1e3);

    // Determinism contract: every report bitwise equals a serial
    // single-Session run on the placed device's config.
    std::vector<std::unique_ptr<Session>> reference;
    for (const GpuConfig &cfg : set.configs)
        reference.push_back(std::make_unique<Session>(cfg));
    p.bitwise_equal = reports.size() == requests.size();
    for (size_t i = 0; i < reports.size() && p.bitwise_equal; ++i) {
        KernelReport serial =
            reference[reports[i].device]->run(requests[i]);
        p.bitwise_equal = statsBitwiseEqual(reports[i].stats,
                                            serial.stats) &&
                          reports[i].backend == serial.backend;
    }
    return p;
}

void
writeJson(const char *path, const std::vector<Point> &points,
          int reps, bool quick)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path);
        std::exit(1);
    }
    std::fprintf(f, "{\n  \"bench\": \"micro_cluster\",\n");
    std::fprintf(f,
                 "  \"config\": {\"threads\": %d, "
                 "\"hardware_concurrency\": %u, \"reps\": %d, "
                 "\"quick\": %s,\n"
                 "    \"host_note\": \"wall-clock figures and "
                 "parallel_scaling ~ 1.0 reflect the bench "
                 "container's hardware_concurrency (1 = a single "
                 "hardware thread, where the pool cannot scale); "
                 "simulated *_us fields are machine-independent\"},"
                 "\n",
                 sharedThreadPool().numThreads(),
                 std::thread::hardware_concurrency(), reps,
                 quick ? "true" : "false");
    std::fprintf(f, "  \"points\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        std::fprintf(
            f,
            "    {\"devices\": \"%s\", \"policy\": \"%s\", "
            "\"num_devices\": %d, \"requests\": %d,\n"
            "     \"makespan_us\": %.3f, \"sum_time_us\": %.3f, "
            "\"throughput_rpms\": %.2f,\n"
            "     \"wall_ms\": %.3f, \"bitwise_equal\": %s}%s\n",
            p.devices.c_str(), p.policy.c_str(), p.num_devices,
            p.requests, p.makespan_us, p.sum_time_us,
            p.throughput_rpms, p.wall_ms,
            p.bitwise_equal ? "true" : "false",
            i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args;
    args.out = "BENCH_cluster.json";
    if (!bench::parseBenchArgs(argc, argv, "micro_cluster", &args))
        return 2;

    bench::warmProcessState(GpuConfig::v100());

    const int replicate = args.quick ? 2 : 6;
    std::vector<DeviceSet> sets = {
        {"v100", {GpuConfig::v100()}},
        {"v100x2", {GpuConfig::v100(), GpuConfig::v100()}},
        {"v100+future", {GpuConfig::v100(), GpuConfig::futureGpu()}},
    };
    if (!args.quick) {
        sets.push_back({"v100x4",
                        {GpuConfig::v100(), GpuConfig::v100(),
                         GpuConfig::v100(), GpuConfig::v100()}});
        sets.push_back(
            {"v100+a100+future",
             {GpuConfig::v100(), GpuConfig::a100Like(),
              GpuConfig::futureGpu()}});
    }

    std::vector<Point> points;
    std::printf("%18s %6s %4s %6s | %12s %12s %10s | %8s\n",
                "devices", "policy", "dev", "reqs", "makespan us",
                "sum us", "req/ms", "wall ms");
    for (const DeviceSet &set : sets) {
        for (PlacementPolicy policy :
             {PlacementPolicy::CostModel, PlacementPolicy::RoundRobin,
              PlacementPolicy::StaticShard}) {
            // Single-device placement is trivial; one policy covers it.
            if (set.configs.size() == 1 &&
                policy != PlacementPolicy::CostModel)
                continue;
            Point p = runPoint(set, policy, replicate);
            points.push_back(p);
            std::printf(
                "%18s %6s %4d %6d | %12.1f %12.1f %10.1f | %8.1f%s\n",
                p.devices.c_str(), p.policy.c_str(), p.num_devices,
                p.requests, p.makespan_us, p.sum_time_us,
                p.throughput_rpms, p.wall_ms,
                p.bitwise_equal ? "" : "  [MISMATCH]");
            if (!p.bitwise_equal) {
                std::fprintf(stderr,
                             "FATAL: cluster reports differ from the "
                             "serial single-Session reference\n");
                std::exit(1);
            }
        }
    }

    // The placement-quality headline: on the heterogeneous mix the
    // cost model must beat round-robin throughput.
    for (const char *devices : {"v100+future", "v100+a100+future"}) {
        double cost = 0.0, rr = 0.0;
        for (const Point &p : points) {
            if (p.devices != devices)
                continue;
            if (p.policy == std::string("cost"))
                cost = p.makespan_us;
            else if (p.policy == std::string("rr"))
                rr = p.makespan_us;
        }
        if (cost > 0.0 && rr > 0.0)
            std::printf("\n%s: cost-model makespan %.1f us vs "
                        "round-robin %.1f us -> %.2fx placement "
                        "quality\n",
                        devices, cost, rr, rr / cost);
    }

    writeJson(args.out, points, args.reps, args.quick);
    std::printf("\nwrote %s\n", args.out);
    return 0;
}
