/**
 * @file
 * Table IV: area and power overhead of the dual-side sparse Tensor
 * Core extension on the V100 (12 nm).
 */
#include <cstdio>

#include "common/table.h"
#include "hwmodel/area_power.h"

using namespace dstc;

int
main()
{
    OverheadReport report = estimateOverhead(GpuConfig::v100());

    std::printf("== Table IV: area and power overhead (12 nm) ==\n\n");
    TextTable table;
    table.setHeader({"Module Name", "Area Overhead (mm^2)",
                     "Power Consumption (W)"});
    for (const auto &component : report.components)
        table.addRow({component.name, fmtDouble(component.area_mm2, 3),
                      fmtDouble(component.power_w, 2)});
    table.addRow({"Total overhead on V100",
                  fmtDouble(report.totalAreaMm2(), 3) + " (" +
                      fmtDouble(report.areaFraction() * 100.0, 1) +
                      "%)",
                  fmtDouble(report.totalPowerW(), 2) + " (" +
                      fmtDouble(report.powerFraction() * 100.0, 2) +
                      "%)"});
    table.print();
    std::printf("\npaper: adders 0.121 / 2.35, collector 1.51 / 0.46, "
                "buffer 11.215 / 1.08, total 12.846 (1.5%%) / 3.89 "
                "(1.60%%)\n");
    return 0;
}
