/** @file Fig. 22, VGG-16 panel. */
#include "fig22_common.h"

int
main()
{
    dstc::bench::runConvPanel(dstc::makeVgg16());
    std::printf("\npaper: Dual Sparse Implicit 1.25x-7.49x over Dense "
                "Implicit (avg 4.38x across CNNs)\n");
    return 0;
}
