/**
 * @file
 * Micro-benchmark of the SpMM path (sparse A x dense B) over the
 * checked-in real-matrix corpus (corpus/*.mtx: GNN adjacency and
 * SuiteSparse-style stand-ins at 99%+ sparsity). Each corpus matrix
 * is run at N = 32 through
 *
 *  - the narrow-tile (8x1) format, forced (the tentpole kernel);
 *  - the 32-wide two-level format, forced (the DNN-regime format);
 *  - the cusparse-like CSR baseline;
 *  - the dense backend, timing-only (the error-bounded floor);
 *  - Auto format selection (the plan-stage cost model's pick).
 *
 * Functional outputs are pinned bitwise: the narrow kernel must equal
 * the scalar refSpmmNarrow reference, the wide kernel, and the CSR
 * baseline (all accumulate ascending-k over identically quantized
 * operands), and the narrow kernel must be bitwise stable across
 * worker counts {1, 2, 4, 7}. The check_bench.py spmm gate requires
 * the corpus-median narrow-vs-wide ratio to stay >= 2x on the
 * reference sweep, Auto selection to stay within 5% of the better
 * format everywhere, and the selected dual kernel to never lose to
 * the cusparse-like baseline.
 *
 * Results are written as JSON (default BENCH_spmm.json; see the
 * bench_json CMake target). `--quick` runs two matrices that cover
 * both sides of the format crossover (scattered: narrow wins;
 * banded: wide wins). `--corpus DIR` points at the .mtx directory
 * (default: ./corpus).
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/session.h"
#include "gemm/spmm_device.h"
#include "sparse/mtx_io.h"
#include "tensor/matrix.h"

using namespace dstc;
using bench::timeMs;

namespace {

constexpr int kN = 32; // dense B columns (GNN feature width)
const int kWorkerCounts[] = {1, 2, 4, 7};

struct Point
{
    std::string matrix; // corpus file stem
    int m = 0, k = 0, n = kN;
    int64_t nnz = 0;
    double density = 0.0;
    double narrow_us = 0.0;
    double wide_us = 0.0;
    double cusparse_us = 0.0;
    double dense_us = 0.0;
    double selected_us = 0.0;
    std::string selected_kernel; // reveals the chosen format
    double narrow_vs_wide = 0.0;      // wide / narrow
    double cusparse_vs_selected = 0.0; // cusparse / selected
    bool bitwise_equal = false;         // narrow == ref == wide == csr
    bool workers_bitwise_equal = false; // narrow stable over workers
    double wall_ms = 0.0;
};

bool
sameMatrix(const Matrix<float> &x, const Matrix<float> &y)
{
    if (x.rows() != y.rows() || x.cols() != y.cols())
        return false;
    for (int r = 0; r < x.rows(); ++r)
        for (int c = 0; c < x.cols(); ++c)
            if (x.at(r, c) != y.at(r, c))
                return false;
    return true;
}

Point
runPoint(Session &session, const std::string &path, int reps)
{
    Point p;
    p.matrix = std::filesystem::path(path).stem().string();

    Matrix<float> a;
    std::string error;
    if (!loadMatrixMarket(path, &a, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        std::exit(1);
    }
    p.m = a.rows();
    p.k = a.cols();
    p.nnz = a.nnz();
    p.density = 1.0 - a.sparsity();

    // One dense B per matrix, seeded off nothing machine-dependent.
    Rng rng(0x517a * static_cast<uint64_t>(a.rows() + a.nnz()));
    Matrix<float> b = randomSparseMatrix(a.cols(), kN, 0.0, rng);

    auto request = [&] { return KernelRequest::spmm(a, b); };

    KernelReport narrow;
    p.wall_ms += timeMs(reps, [&] {
        narrow = session.run(request()
                                 .withMethod(Method::DualSparse)
                                 .withSpmmFormat(SpmmFormat::Narrow));
    });
    p.narrow_us = narrow.timeUs();

    KernelReport wide;
    p.wall_ms += timeMs(reps, [&] {
        wide = session.run(request()
                               .withMethod(Method::DualSparse)
                               .withSpmmFormat(SpmmFormat::Wide));
    });
    p.wide_us = wide.timeUs();

    KernelReport csr;
    p.wall_ms += timeMs(reps, [&] {
        csr = session.run(request().withMethod(Method::CusparseLike));
    });
    p.cusparse_us = csr.timeUs();

    // Dense floor, timing-only: a functional m x k x n dense multiply
    // is wall-clock-expensive and its output is error-bounded rather
    // than bitwise, so it contributes a simulated time and nothing
    // else.
    KernelReport dense;
    p.wall_ms += timeMs(reps, [&] {
        dense = session.run(request()
                                .withMethod(Method::Dense)
                                .withFunctional(false));
    });
    p.dense_us = dense.timeUs();

    // Auto selection, timing-only: the kernel name in the stats
    // reveals which format the plan-stage cost model picked.
    KernelReport selected;
    p.wall_ms += timeMs(reps, [&] {
        selected = session.run(request()
                                   .withMethod(Method::DualSparse)
                                   .withFunctional(false));
    });
    p.selected_us = selected.timeUs();
    p.selected_kernel = selected.stats.name;

    p.narrow_vs_wide = p.wide_us > 0.0 ? p.wide_us / p.narrow_us : 0.0;
    p.cusparse_vs_selected =
        p.selected_us > 0.0 ? p.cusparse_us / p.selected_us : 0.0;

    // The bitwise pin: every functional SpMM path accumulates each
    // output cell ascending-k from identically quantized operands,
    // so narrow == scalar reference == wide == csr exactly.
    const Matrix<float> ref = refSpmmNarrow(a, b, DataType::Fp16);
    p.bitwise_equal = narrow.d && wide.d && csr.d &&
                      sameMatrix(*narrow.d, ref) &&
                      sameMatrix(*wide.d, ref) &&
                      sameMatrix(*csr.d, ref);

    // Worker-count stability: the word-parallel encoder and the
    // strip-partitioned kernel must be bitwise deterministic.
    p.workers_bitwise_equal = narrow.d != nullptr;
    for (int w : kWorkerCounts) {
        ExecutionResources res;
        res.compute_workers = w;
        res.encode_workers = w;
        KernelReport r;
        p.wall_ms += timeMs(1, [&] {
            r = session.run(request()
                                .withMethod(Method::DualSparse)
                                .withSpmmFormat(SpmmFormat::Narrow)
                                .withResources(res)
                                .withSeed(static_cast<uint64_t>(w)));
        });
        if (!r.d || !sameMatrix(*r.d, ref))
            p.workers_bitwise_equal = false;
    }
    return p;
}

void
writeJson(const char *path, const std::vector<Point> &points,
          int reps, bool quick)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path);
        std::exit(1);
    }
    std::fprintf(f, "{\n  \"bench\": \"micro_spmm\",\n");
    std::fprintf(
        f,
        "  \"config\": {\"threads\": %d, \"hardware_concurrency\": "
        "%u, \"reps\": %d, \"quick\": %s,\n"
        "    \"host_note\": \"*_us fields are simulated and "
        "machine-independent; wall_ms is the only wall-clock "
        "field\"},\n",
        sharedThreadPool().numThreads(),
        std::thread::hardware_concurrency(), reps,
        quick ? "true" : "false");
    std::fprintf(f, "  \"points\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        std::fprintf(
            f,
            "    {\"matrix\": \"%s\", \"m\": %d, \"k\": %d, \"n\": "
            "%d, \"nnz\": %lld, \"density\": %.6f,\n"
            "     \"narrow_us\": %.4f, \"wide_us\": %.4f, "
            "\"cusparse_us\": %.4f, \"dense_us\": %.4f, "
            "\"selected_us\": %.4f,\n"
            "     \"selected_kernel\": \"%s\", \"narrow_vs_wide\": "
            "%.4f, \"cusparse_vs_selected\": %.4f,\n"
            "     \"bitwise_equal\": %s, \"workers_bitwise_equal\": "
            "%s, \"wall_ms\": %.3f}%s\n",
            p.matrix.c_str(), p.m, p.k, p.n,
            static_cast<long long>(p.nnz), p.density, p.narrow_us,
            p.wide_us, p.cusparse_us, p.dense_us, p.selected_us,
            p.selected_kernel.c_str(), p.narrow_vs_wide,
            p.cusparse_vs_selected, p.bitwise_equal ? "true" : "false",
            p.workers_bitwise_equal ? "true" : "false", p.wall_ms,
            i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

/** bench_util's common flags plus --corpus DIR. */
struct SpmmArgs : bench::BenchArgs
{
    const char *corpus = "corpus";
};

bool
parseArgs(int argc, char **argv, SpmmArgs *args)
{
    // Strip --corpus before handing the rest to the shared parser.
    std::vector<char *> rest = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--corpus") && i + 1 < argc)
            args->corpus = argv[++i];
        else
            rest.push_back(argv[i]);
    }
    return bench::parseBenchArgs(static_cast<int>(rest.size()),
                                 rest.data(), "micro_spmm [--corpus "
                                              "DIR]",
                                 args);
}

} // namespace

int
main(int argc, char **argv)
{
    SpmmArgs args;
    args.out = "BENCH_spmm.json";
    if (!parseArgs(argc, argv, &args))
        return 2;

    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(args.corpus, ec))
        if (entry.path().extension() == ".mtx")
            files.push_back(entry.path().string());
    if (ec || files.empty()) {
        std::fprintf(stderr,
                     "error: no .mtx files under '%s' (run "
                     "tools/gen_corpus.py, or pass --corpus DIR)\n",
                     args.corpus);
        return 2;
    }
    std::sort(files.begin(), files.end());
    if (args.quick) {
        // One matrix from each side of the format crossover:
        // scattered (narrow wins) and banded (wide wins) — the pair
        // exercises both kernels and both cost-model outcomes.
        std::vector<std::string> subset;
        for (const std::string &f : files)
            if (f.find("cora") != std::string::npos ||
                f.find("stencil") != std::string::npos)
                subset.push_back(f);
        if (!subset.empty())
            files = subset;
        else
            files.resize(1);
    }

    bench::warmProcessState(GpuConfig::v100());
    Session session;

    std::vector<Point> points;
    std::printf("%-14s %11s %8s | %8s %8s %8s %8s | %6s %-18s\n",
                "matrix", "shape", "density", "narrow", "wide",
                "csr", "auto", "nar/wid", "selected kernel");
    for (const std::string &path : files) {
        Point p = runPoint(session, path, args.reps);
        points.push_back(p);
        std::printf("%-14s %5dx%5d %7.3f%% | %8.2f %8.2f %8.2f "
                    "%8.2f | %5.2fx %-18s%s%s\n",
                    p.matrix.c_str(), p.m, p.k, p.density * 100.0,
                    p.narrow_us, p.wide_us, p.cusparse_us,
                    p.selected_us, p.narrow_vs_wide,
                    p.selected_kernel.c_str(),
                    p.bitwise_equal ? "" : "  [MISMATCH]",
                    p.workers_bitwise_equal ? "" : "  [WORKER DRIFT]");
        if (!p.bitwise_equal || !p.workers_bitwise_equal) {
            std::fprintf(stderr,
                         "FATAL: an SpMM path diverged from the "
                         "scalar narrow-tile reference\n");
            std::exit(1);
        }
    }

    writeJson(args.out, points, args.reps, args.quick);
    std::printf("\nwrote %s\n", args.out);
    return 0;
}
