/**
 * @file
 * Fig. 6: speedup on the global matrix beyond the quantized warp
 * ratios. A row with 37.5% average sparsity yields no speedup if the
 * non-zeros are spread uniformly (every warp sees > 50% occupancy on
 * the B side), but a clustered distribution leaves some warps
 * lighter and recovers ~1.3x — the paper's argument for why the
 * enumerable per-warp ratios do not cap the global speedup.
 */
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "model/sparsity_gen.h"
#include "session_util.h"

using namespace dstc;

namespace {

double
spgemmComputeUs(Session &session, const Matrix<float> &a,
                const Matrix<float> &b)
{
    SpGemmOptions opts;
    opts.functional = false;
    return bench::spgemmStats(session, a, b, opts).compute_us;
}

} // namespace

int
main()
{
    Session session;
    Rng rng(6);
    const int n = 1024;

    std::printf("== Fig. 6: uneven non-zero distribution unlocks "
                "speedup beyond the quantized ratios ==\n\n");

    // Dense baseline at the same shape (compute side).
    Matrix<float> dense_a = randomSparseMatrix(n, n, 0.0, rng);
    Matrix<float> dense_b = randomSparseMatrix(n, n, 0.0, rng);
    const double dense_us = spgemmComputeUs(session, dense_a, dense_b);

    TextTable table;
    table.setHeader({"B distribution (37.5% sparsity)",
                     "compute time (us)", "speedup vs dense"});
    Matrix<float> a = randomSparseMatrix(n, n, 0.0, rng);

    Matrix<float> b_uniform = uniformSparseMatrix(n, n, 0.375, rng);
    const double uniform_us = spgemmComputeUs(session, a, b_uniform);
    table.addRow({"uniform", fmtDouble(uniform_us, 1),
                  fmtSpeedup(dense_us / uniform_us)});

    for (double cluster : {1.5, 2.0, 2.66}) {
        Matrix<float> b_clustered =
            clusteredSparseMatrix(n, n, 0.375, 32, cluster, rng);
        const double t = spgemmComputeUs(session, a, b_clustered);
        char label[64];
        std::snprintf(label, sizeof(label), "clustered (x%.2f local)",
                      cluster);
        table.addRow({label, fmtDouble(t, 1),
                      fmtSpeedup(dense_us / t)});
    }
    table.print();
    std::printf("\npaper example: 37.5%% sparsity row -> 1.3x once "
                "warps are unevenly loaded; uniform -> ~1x because "
                "every 32-wide B row still needs both 16-chunks\n");
    return 0;
}
