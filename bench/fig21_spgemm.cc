/**
 * @file
 * Fig. 21: SpGEMM execution time on 4096x4096x4096 across the
 * (A sparsity x B sparsity) grid, for four methods:
 *   - CUTLASS          dense tensor-core baseline (the 1x line)
 *   - Sparse TC [72]   fixed-rate vector-wise design (~1.86x line)
 *   - cuSparse         CSR SpGEMM (B fixed at 99%, A 90%..99.9%)
 *   - Ours             dual-side bitmap outer-product SpGEMM
 *
 * Prints execution time in microseconds plus the speedup over
 * CUTLASS for every series point the paper plots.
 */
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "session_util.h"

using namespace dstc;

namespace {

constexpr int64_t kN = 4096;

} // namespace

int
main()
{
    Session session;
    const double dense_us =
        bench::denseGemmTime(session, kN, kN, kN).timeUs();
    const double zhu_us =
        bench::zhuGemmTime(session, kN, kN, kN, 0.75).timeUs();

    std::printf("== Fig. 21: SpGEMM on %lldx%lldx%lld ==\n\n",
                static_cast<long long>(kN), static_cast<long long>(kN),
                static_cast<long long>(kN));
    std::printf("CUTLASS (dense baseline): %.0f us\n", dense_us);
    std::printf("Sparse Tensor Core [72]:  %.0f us (%.2fx, fixed)\n\n",
                zhu_us, dense_us / zhu_us);

    // cuSparse series: B at 99%, A from 90% to 99.9% (the paper notes
    // it is far too slow below 90%).
    std::printf("-- cuSparse (B sparsity fixed at 99%%) --\n");
    TextTable cusparse;
    cusparse.setHeader(
        {"A sparsity (%)", "time (us)", "speedup vs CUTLASS"});
    for (double sa : {90.0, 95.0, 99.0, 99.9}) {
        const double t =
            bench::cusparseTime(session, kN, kN, kN, 1.0 - sa / 100.0, 0.01)
                .timeUs();
        cusparse.addRow({fmtDouble(sa, 1), fmtDouble(t, 0),
                         fmtSpeedup(dense_us / t)});
    }
    cusparse.print();

    // Our method: the full grid.
    std::printf("\n-- Our dual-side SpGEMM --\n");
    TextTable ours;
    ours.setHeader({"A sp. (%)", "B sp. (%)", "time (us)",
                    "speedup vs CUTLASS", "bound"});
    Rng rng(21);
    for (double sb : {0.0, 50.0, 90.0, 99.0, 99.9}) {
        for (double sa : {0.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
            SparsityProfile pa = SparsityProfile::randomA(
                kN, kN, 32, 1.0 - sa / 100.0, 1.0, rng);
            SparsityProfile pb = SparsityProfile::randomA(
                kN, kN, 32, 1.0 - sb / 100.0, 1.0, rng);
            KernelStats stats = bench::spgemmTime(session, pa, pb);
            ours.addRow({fmtDouble(sa, 1), fmtDouble(sb, 1),
                         fmtDouble(stats.timeUs(), 0),
                         fmtSpeedup(dense_us / stats.timeUs()),
                         stats.bound == Bound::Compute ? "compute"
                                                       : "memory"});
        }
    }
    ours.print();

    // The paper's pruned operands are not uniform Bernoulli — AGP
    // and movement pruning cluster the non-zeros (dead filters,
    // heads), which is what lets warp tiles empty out (Fig. 6 /
    // Sec. VI-D). Re-run the B-sparse series with a pruned-like
    // clustered pattern.
    std::printf("\n-- Our dual-side SpGEMM, clustered (pruned-like, "
                "cluster=8) non-zero distribution --\n");
    TextTable clustered;
    clustered.setHeader({"A sp. (%)", "B sp. (%)", "time (us)",
                         "speedup vs CUTLASS", "bound"});
    for (double sb : {90.0, 99.0, 99.9}) {
        for (double sa : {0.0, 50.0, 90.0, 99.0, 99.9}) {
            SparsityProfile pa = SparsityProfile::randomA(
                kN, kN, 32, 1.0 - sa / 100.0, sa > 0.0 ? 8.0 : 1.0,
                rng);
            SparsityProfile pb = SparsityProfile::randomA(
                kN, kN, 32, 1.0 - sb / 100.0, 8.0, rng);
            KernelStats stats = bench::spgemmTime(session, pa, pb);
            clustered.addRow(
                {fmtDouble(sa, 1), fmtDouble(sb, 1),
                 fmtDouble(stats.timeUs(), 0),
                 fmtSpeedup(dense_us / stats.timeUs()),
                 stats.bound == Bound::Compute ? "compute"
                                               : "memory"});
        }
    }
    clustered.print();

    std::printf("\npaper anchors: A=0/B=99 -> 13.4x; A=99.9/B=99 -> "
                "23x (13.7x over cuSparse); crossover vs dense at "
                "A~25%% when B=0; Sparse TC fixed at 1.86x.\n");
    return 0;
}
