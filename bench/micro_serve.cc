/**
 * @file
 * Micro-benchmark of the online serving subsystem: tail latency,
 * deadline-miss rate and goodput of the ServingEngine over device
 * sets, serving policies and offered-load levels.
 *
 * The workload pool is the heterogeneous resnet18+bert layer mix (the
 * same trace micro_cluster shards). For every (device set, policy)
 * pair the bench runs two open-loop load levels, expressed relative
 * to the device set's estimated capacity: 0.8x (underload — tail
 * latency is the figure of merit) and 2.5x (overload — goodput under
 * backpressure is). All serving metrics are *simulated* (virtual
 * microsecond clock), hence deterministic and comparable across CI
 * hosts; host wall time is recorded for interest only.
 *
 * Every completed request is checked bitwise against a serial
 * single-Session replay on the placed device's config (the serving
 * determinism contract); any divergence aborts the bench.
 * tools/check_bench.py additionally gates the deadline-vs-rr p99 and
 * goodput ratios on the heterogeneous mix.
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "model/runner.h"
#include "serve/serving.h"

using namespace dstc;
using bench::nowMs;

namespace {

/** One (device set, policy, load) measurement. */
struct Point
{
    std::string devices; ///< e.g. "v100+future"
    std::string policy;  ///< "deadline" | "cost" | "rr"
    std::string load;    ///< "0.8x" | "2.5x" (of estimated capacity)
    int num_devices = 0;
    double rate_rpms = 0.0; ///< offered rate (requests / sim ms)
    int offered = 0;
    int completed = 0;
    int rejected = 0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double miss_rate = 0.0;
    double slo_attainment = 0.0;
    double throughput_rpms = 0.0;
    double goodput_rpms = 0.0;
    int steals = 0;
    int microbatches = 0;

    // Fault sweep fields ("" / "none" / zeros on healthy points).
    std::string faults = "";   ///< fault spec string
    std::string recovery = "none"; ///< recovery policy label
    int lost = 0;
    int retries = 0;
    int failovers = 0;
    int hedges = 0;
    double availability = 1.0;

    double wall_ms = 0.0;       ///< host wall clock (informative)
    bool bitwise_equal = false; ///< vs serial single-Session replay
};

/** One fault-sweep scenario: a spec plus the recovery policy mix. */
struct FaultCase
{
    const char *label;   ///< "recovery" JSON value
    const char *spec;    ///< FaultSpec string ("" = healthy)
    double load_factor;
    bool retry, hedge, failover, degrade;
};

/** A named device set. */
struct DeviceSet
{
    const char *name;
    std::vector<GpuConfig> configs;
};

/** The serving pool: the heterogeneous resnet18+bert layer mix. */
std::vector<KernelRequest>
servingPool()
{
    std::vector<KernelRequest> pool;
    for (const DnnModel &model : {makeResnet18(), makeBertBase()}) {
        const std::vector<KernelRequest> batch =
            ModelRunner::layerRequests(
                model, ModelMethod::DualSparseImplicit, 1);
        pool.insert(pool.end(), batch.begin(), batch.end());
    }
    return pool;
}

Point
runPoint(const DeviceSet &set, ServePolicy policy,
         double load_factor, const char *load_name, double duration_ms,
         const FaultCase *fault = nullptr)
{
    Point p;
    p.devices = set.name;
    p.policy = servePolicyToken(policy);
    p.load = load_name;
    p.num_devices = static_cast<int>(set.configs.size());

    ServingOptions opts;
    opts.devices = set.configs;
    opts.policy = policy;
    opts.arrivals.duration_ms = duration_ms;
    opts.arrivals.pattern = TrafficPattern::Bursty;
    opts.arrivals.seed = 7;
    if (fault) {
        p.faults = fault->spec;
        p.recovery = fault->label;
        std::string error;
        if (!FaultSpec::parse(fault->spec, &opts.faults, &error)) {
            std::fprintf(stderr, "bad fault spec '%s': %s\n",
                         fault->spec, error.c_str());
            std::exit(1);
        }
        opts.retry = fault->retry;
        opts.retry_budget = 6;
        opts.hedge = fault->hedge;
        opts.failover = fault->failover;
        opts.degrade = fault->degrade;
    }

    // The offered rate is relative to the device set's estimated
    // capacity, so "0.8x" means the same pressure on every set.
    ServingEngine probe(opts, servingPool());
    opts.arrivals.rate_rpms =
        load_factor * probe.estimatedCapacityRpms();
    p.rate_rpms = opts.arrivals.rate_rpms;

    ServingEngine engine(opts, servingPool());
    const double t0 = nowMs();
    ServingResult result = engine.run();
    p.wall_ms = nowMs() - t0;

    const ServingStats &stats = result.stats;
    p.offered = static_cast<int>(stats.offered);
    p.completed = static_cast<int>(stats.completed);
    p.rejected = static_cast<int>(stats.rejected);
    p.p50_us = stats.latency.p50_us;
    p.p95_us = stats.latency.p95_us;
    p.p99_us = stats.latency.p99_us;
    p.miss_rate = stats.deadline_miss_rate;
    p.slo_attainment = stats.slo_attainment;
    p.throughput_rpms = stats.throughput_rpms;
    p.goodput_rpms = stats.goodput_rpms;
    p.steals = static_cast<int>(stats.steals);
    p.microbatches = static_cast<int>(stats.microbatches);
    p.lost = static_cast<int>(stats.faults.lost);
    p.retries = static_cast<int>(stats.faults.retries);
    p.failovers = static_cast<int>(stats.faults.failovers);
    p.hedges = static_cast<int>(stats.faults.hedges);
    p.availability = stats.faults.availability;
    p.bitwise_equal = engine.replayMatchesSerial(result);
    return p;
}

void
writeJson(const char *path, const std::vector<Point> &points,
          int reps, bool quick)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path);
        std::exit(1);
    }
    std::fprintf(f, "{\n  \"bench\": \"micro_serve\",\n");
    std::fprintf(
        f,
        "  \"config\": {\"threads\": %d, "
        "\"hardware_concurrency\": %u, \"reps\": %d, "
        "\"quick\": %s,\n"
        "    \"host_note\": \"serving metrics are simulated and "
        "deterministic; wall_ms and parallel_scaling ~ 1.0 reflect "
        "the bench container's hardware_concurrency (1 = a single "
        "hardware thread, where the pool cannot scale) and are "
        "informative only\"},\n",
        sharedThreadPool().numThreads(),
        std::thread::hardware_concurrency(), reps,
        quick ? "true" : "false");
    std::fprintf(f, "  \"points\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        std::fprintf(
            f,
            "    {\"devices\": \"%s\", \"policy\": \"%s\", "
            "\"load\": \"%s\", \"num_devices\": %d, "
            "\"rate_rpms\": %.1f,\n"
            "     \"offered\": %d, \"completed\": %d, "
            "\"rejected\": %d,\n"
            "     \"p50_us\": %.3f, \"p95_us\": %.3f, "
            "\"p99_us\": %.3f,\n"
            "     \"miss_rate\": %.4f, \"slo_attainment\": %.4f, "
            "\"throughput_rpms\": %.2f, \"goodput_rpms\": %.2f,\n"
            "     \"steals\": %d, \"microbatches\": %d,\n"
            "     \"faults\": \"%s\", \"recovery\": \"%s\", "
            "\"lost\": %d, \"retries\": %d, \"failovers\": %d, "
            "\"hedges\": %d, \"availability\": %.4f,\n"
            "     \"wall_ms\": %.3f, \"bitwise_equal\": %s}%s\n",
            p.devices.c_str(), p.policy.c_str(), p.load.c_str(),
            p.num_devices, p.rate_rpms, p.offered, p.completed,
            p.rejected, p.p50_us, p.p95_us, p.p99_us, p.miss_rate,
            p.slo_attainment, p.throughput_rpms, p.goodput_rpms,
            p.steals, p.microbatches, p.faults.c_str(),
            p.recovery.c_str(), p.lost, p.retries, p.failovers,
            p.hedges, p.availability, p.wall_ms,
            p.bitwise_equal ? "true" : "false",
            i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args;
    args.out = "BENCH_serve.json";
    if (!bench::parseBenchArgs(argc, argv, "micro_serve", &args))
        return 2;

    bench::warmProcessState(GpuConfig::v100());

    const double duration_ms = args.quick ? 1.0 : 2.0;
    std::vector<DeviceSet> sets = {
        {"v100x2", {GpuConfig::v100(), GpuConfig::v100()}},
        {"v100+future", {GpuConfig::v100(), GpuConfig::futureGpu()}},
    };
    if (!args.quick) {
        sets.insert(sets.begin(), {"v100", {GpuConfig::v100()}});
        sets.push_back({"v100x4",
                        {GpuConfig::v100(), GpuConfig::v100(),
                         GpuConfig::v100(), GpuConfig::v100()}});
    }

    struct Load
    {
        const char *name;
        double factor;
    };
    const std::vector<Load> loads = {{"0.8x", 0.8}, {"2.5x", 2.5}};

    std::vector<Point> points;
    std::printf("%12s %9s %5s | %6s %6s %5s | %8s %8s %8s | %7s %7s\n",
                "devices", "policy", "load", "offer", "done", "rej",
                "p50 us", "p99 us", "miss", "req/ms", "good");
    for (const DeviceSet &set : sets) {
        for (ServePolicy policy :
             {ServePolicy::Deadline, ServePolicy::CostModel,
              ServePolicy::RoundRobin}) {
            // Single-device placement is trivial; one policy covers
            // it (EDF vs FIFO drain still differs, but the placement
            // comparison is the point of the sweep).
            if (set.configs.size() == 1 &&
                policy != ServePolicy::Deadline)
                continue;
            for (const Load &load : loads) {
                Point p = runPoint(set, policy, load.factor,
                                   load.name, duration_ms);
                points.push_back(p);
                std::printf("%12s %9s %5s | %6d %6d %5d | %8.1f "
                            "%8.1f %8.3f | %7.1f %7.1f%s\n",
                            p.devices.c_str(), p.policy.c_str(),
                            p.load.c_str(), p.offered, p.completed,
                            p.rejected, p.p50_us, p.p99_us,
                            p.miss_rate, p.throughput_rpms,
                            p.goodput_rpms,
                            p.bitwise_equal ? "" : "  [MISMATCH]");
                if (!p.bitwise_equal) {
                    std::fprintf(stderr,
                                 "FATAL: serving reports differ from "
                                 "the serial single-Session replay\n");
                    std::exit(1);
                }
            }
        }
    }

    // Fault sweep (v100+future, deadline policy): a mid-run crash
    // with and without recovery — check_bench gates recovery goodput
    // >= the no-recovery baseline — plus transient-only faults with
    // retry, which must lose nothing, and a hedged variant for the
    // interactive tail. The crash instant (500 us) is mid-run for
    // the quick 1 ms sweep and the 25% mark of the full 2 ms one.
    const DeviceSet *fault_set = nullptr;
    for (const DeviceSet &set : sets)
        if (std::string(set.name) == "v100+future")
            fault_set = &set;
    if (!fault_set) {
        std::fprintf(stderr, "fault sweep set missing\n");
        return 1;
    }
    const std::vector<FaultCase> fault_cases = {
        {"failover", "crash@500:d1", 1.5, false, false, true, true},
        {"none", "crash@500:d1", 1.5, false, false, false, false},
        {"retry", "transient:p0.05", 0.8, true, false, true, true},
        {"retry+hedge", "transient:p0.05;crash@500:d1", 0.8, true,
         true, true, true},
    };
    std::printf("\nfault sweep on %s (deadline policy):\n",
                fault_set->name);
    std::printf("%14s %28s | %6s %5s | %7s %7s %7s | %7s %6s\n",
                "recovery", "faults", "done", "lost", "retries",
                "failov", "hedges", "good", "avail");
    for (const FaultCase &fc : fault_cases) {
        Point p = runPoint(*fault_set, ServePolicy::Deadline,
                           fc.load_factor,
                           fc.load_factor > 1.0 ? "1.5x" : "0.8x",
                           duration_ms, &fc);
        points.push_back(p);
        std::printf("%14s %28s | %6d %5d | %7d %7d %7d | %7.1f "
                    "%6.4f%s\n",
                    p.recovery.c_str(), p.faults.c_str(), p.completed,
                    p.lost, p.retries, p.failovers, p.hedges,
                    p.goodput_rpms, p.availability,
                    p.bitwise_equal ? "" : "  [MISMATCH]");
        if (!p.bitwise_equal) {
            std::fprintf(stderr,
                         "FATAL: serving reports differ from the "
                         "serial single-Session replay\n");
            std::exit(1);
        }
    }

    // The serving headline: on the heterogeneous mix the
    // deadline-aware policy must beat round-robin tail latency and
    // goodput.
    for (const Load &load : loads) {
        double dl_p99 = 0.0, rr_p99 = 0.0;
        double dl_good = 0.0, rr_good = 0.0;
        for (const Point &p : points) {
            if (p.devices != "v100+future" || p.load != load.name ||
                !p.faults.empty())
                continue;
            if (p.policy == "deadline") {
                dl_p99 = p.p99_us;
                dl_good = p.goodput_rpms;
            } else if (p.policy == "rr") {
                rr_p99 = p.p99_us;
                rr_good = p.goodput_rpms;
            }
        }
        if (dl_p99 > 0.0 && rr_p99 > 0.0)
            std::printf("\nv100+future @ %s: deadline p99 %.1f us vs "
                        "rr %.1f us (%.2fx), goodput %.1f vs %.1f "
                        "req/ms (%.2fx)\n",
                        load.name, dl_p99, rr_p99, rr_p99 / dl_p99,
                        dl_good, rr_good, dl_good / rr_good);
    }

    writeJson(args.out, points, args.reps, args.quick);
    std::printf("\nwrote %s\n", args.out);
    return 0;
}
