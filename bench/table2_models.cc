/**
 * @file
 * Table II: the evaluated sparse DNN models, plus the layer
 * inventory (shapes and sparsity operating points) each benchmark
 * panel of Fig. 22 runs.
 */
#include <cstdio>

#include "common/table.h"
#include "model/zoo.h"

using namespace dstc;

int
main()
{
    std::printf("== Table II: evaluated sparse DNN models ==\n\n");
    TextTable table;
    table.setHeader({"Models", "Pruning Scheme", "Dataset", "Accuracy"});
    for (const auto &model : allModels())
        table.addRow({model.name, model.pruning, model.dataset,
                      model.accuracy});
    table.print();

    std::printf("\n== Layer inventory ==\n\n");
    for (const auto &model : allModels()) {
        std::printf("-- %s --\n", model.name.c_str());
        TextTable layers;
        layers.setHeader({"layer", "shape (GEMM m x n x k)",
                          "weight sp.", "act sp."});
        for (const auto &layer : model.conv_layers) {
            layers.addRow(
                {layer.name,
                 layer.shape.str() + " -> " +
                     std::to_string(layer.shape.loweredRows()) + "x" +
                     std::to_string(layer.shape.out_c) + "x" +
                     std::to_string(layer.shape.loweredCols()),
                 fmtDouble(layer.weight_sparsity, 2),
                 fmtDouble(layer.act_sparsity, 2)});
        }
        for (const auto &layer : model.gemm_layers) {
            layers.addRow({layer.name,
                           std::to_string(layer.m) + "x" +
                               std::to_string(layer.n) + "x" +
                               std::to_string(layer.k),
                           fmtDouble(layer.weight_sparsity, 2),
                           fmtDouble(layer.act_sparsity, 2)});
        }
        layers.print();
        std::printf("\n");
    }
    return 0;
}
