/** @file Fig. 22, Mask R-CNN panel. */
#include "fig22_common.h"

int
main()
{
    dstc::bench::runConvPanel(dstc::makeMaskRcnn());
    return 0;
}
