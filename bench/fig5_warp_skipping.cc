/**
 * @file
 * Fig. 5 / Fig. 15: warp-level OHMMA skipping. Reproduces the
 * running example (Av column with 20/32 non-zeros, Bv row with
 * 11/32 -> 5 of 8 OHMMA steps skipped, 8/3 = 2.67x) and sweeps the
 * quantized sparsity grid the predication logic sees.
 */
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "gemm/spgemm_warp.h"
#include "isa/program_builder.h"
#include "tensor/matrix.h"

using namespace dstc;

int
main()
{
    std::printf("== Fig. 5: SpGEMM in a warp — OHMMA skipping ==\n\n");

    // The paper's example: 20 of 32 on the Av side, 11 of 32 on Bv.
    {
        const int issued = enabledOhmmas(20, 11);
        std::printf("paper example: popc(Av)=20, popc(Bv)=11 -> "
                    "%d of 8 OHMMAs issued (%d skipped), theoretical "
                    "speedup %.2fx (paper: 3 issued, 2.67x)\n\n",
                    issued, 8 - issued, 8.0 / issued);
    }

    TextTable table;
    table.setHeader({"Av nnz/32", "Bv nnz/32", "OHMMAs issued",
                     "skipped", "speedup vs dense"});
    for (int na : {0, 4, 8, 12, 16, 20, 24, 28, 32}) {
        for (int nb : {0, 8, 16, 24, 32}) {
            const int issued = enabledOhmmas(na, nb);
            table.addRow(
                {std::to_string(na), std::to_string(nb),
                 std::to_string(issued), std::to_string(8 - issued),
                 issued == 0 ? "inf"
                             : fmtSpeedup(8.0 / issued, 2)});
        }
    }
    table.print();

    // Measured on the warp engine with random tiles: the realized
    // issue reduction across a 32x32x32 warp tile.
    std::printf("\n== Realized issue cycles on random 32x32x32 warp "
                "tiles ==\n\n");
    GpuConfig cfg = GpuConfig::v100();
    SpGemmWarpEngine engine(cfg);
    TextTable realized;
    realized.setHeader({"A sparsity", "B sparsity", "issue cycles",
                        "dense cycles", "speedup"});
    Rng rng(42);
    const int64_t dense_cycles = 32 * 8 + 32; // OHMMAs + BOHMMAs
    for (double sa : {0.0, 0.25, 0.5, 0.75, 0.9}) {
        for (double sb : {0.0, 0.5, 0.9}) {
            Matrix<float> a = randomSparseMatrix(32, 32, sa, rng);
            Matrix<float> b = randomSparseMatrix(32, 32, sb, rng);
            WarpTileResult r = engine.computeTile(
                BitmapMatrix::encode(a, Major::Col),
                BitmapMatrix::encode(b, Major::Row), nullptr);
            realized.addRow(
                {fmtDouble(sa, 2), fmtDouble(sb, 2),
                 std::to_string(r.issue_cycles),
                 std::to_string(dense_cycles),
                 fmtSpeedup(static_cast<double>(dense_cycles) /
                            std::max<int64_t>(1, r.issue_cycles))});
        }
    }
    realized.print();
    return 0;
}
