/**
 * @file
 * Micro-benchmark of the functional dual-sparse SpGEMM pipeline,
 * stage by stage: operand encoding, the tile-loop compute, and the
 * accumulator merge/write-back. Each point is measured three ways —
 * the pre-word-parallel scalar reference (computeTileScalar plus the
 * per-tile copy-out the old pipeline performed), the word-parallel
 * single-thread path, and the pooled parallel tile loop — across
 * sparsity levels, sizes and tile-K shapes.
 *
 * Results are written as JSON (default BENCH_spgemm.json; see the
 * bench_json CMake target) so every PR leaves a perf trajectory to
 * compare against. `--quick` runs a seconds-scale subset for CI.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/datatype.h"
#include "common/rng.h"
#include "core/thread_pool.h"
#include "gemm/spgemm_device.h"
#include "sparse/two_level.h"
#include "tensor/matrix.h"
#include "tensor/reference.h"

using namespace dstc;
using bench::nowMs;
using bench::timeMs;

namespace {

/**
 * The seed pipeline, reproduced verbatim at bench level: per-tile
 * staging accumulator filled by the scalar per-element warp path,
 * then copied element-by-element into D. Compute and merge
 * (copy-out) stages are timed separately.
 */
Matrix<float>
scalarPipeline(const SpGemmDevice &device,
               const TwoLevelBitmapMatrix &a_enc,
               const TwoLevelBitmapMatrix &b_enc,
               const SpGemmOptions &opts, double *compute_ms,
               double *merge_ms)
{
    const int m = a_enc.rows(), n = b_enc.cols();
    const int tiles_m = a_enc.numTileRows();
    const int tiles_k = a_enc.numTileCols();
    const int tiles_n = b_enc.numTileCols();
    // SpGemmWarpEngine is internal to the device; rebuild one from
    // the same machine description.
    SpGemmWarpEngine engine(device.config());
    Matrix<float> d(m, n);
    *compute_ms = 0.0;
    *merge_ms = 0.0;
    for (int ti = 0; ti < tiles_m; ++ti) {
        for (int tj = 0; tj < tiles_n; ++tj) {
            const int rows = std::min(opts.tile_m, m - ti * opts.tile_m);
            const int cols = std::min(opts.tile_n, n - tj * opts.tile_n);
            Matrix<float> accum(rows, cols);
            const double t0 = nowMs();
            for (int tk = 0; tk < tiles_k; ++tk) {
                if (opts.two_level && (!a_enc.tileNonEmpty(ti, tk) ||
                                       !b_enc.tileNonEmpty(tk, tj)))
                    continue;
                engine.computeTileScalar(a_enc.tile(ti, tk),
                                         b_enc.tile(tk, tj), &accum);
            }
            const double t1 = nowMs();
            for (int r = 0; r < rows; ++r)
                for (int c = 0; c < cols; ++c)
                    d.at(ti * opts.tile_m + r, tj * opts.tile_n + c) =
                        accum.at(r, c);
            const double t2 = nowMs();
            *compute_ms += t1 - t0;
            *merge_ms += t2 - t1;
        }
    }
    return d;
}

struct Point
{
    int m, n, k, tile_k;
    double sparsity;
    double encode_ms = 0.0;
    double scalar_compute_ms = 0.0;
    double scalar_merge_ms = 0.0;
    double word_ms = 0.0;
    double parallel_ms = 0.0;
    bool bitwise_equal = false;
};

/**
 * One (sparsity, datatype) operating point of the precision axis:
 * the simulated kernel time of the functional dual-sparse multiply
 * under that datatype (deterministic, machine-independent — what
 * check_bench.py gates the int8-vs-fp16 advantage on), plus the
 * in-domain bitwise checks: serial == pooled for every datatype, and
 * the integer datatypes == the refGemmQuant golden model.
 */
struct PrecisionPoint
{
    int m, n, k;
    double sparsity;
    DataType dtype;
    double modeled_us = 0.0;
    double encoded_mb = 0.0; ///< dtype-aware operand footprint
    double word_ms = 0.0;    ///< wall clock of the serial multiply
    bool memory_bound = false;
    bool bitwise_equal = false;
};

PrecisionPoint
runPrecisionPoint(int size, double sparsity, DataType dtype, int reps)
{
    PrecisionPoint p;
    p.m = p.n = p.k = size;
    p.sparsity = sparsity;
    p.dtype = dtype;

    // Same seeding as runPoint: the precision axis reuses the
    // operand distribution of the speedup axis.
    Rng rng(0xbe9c << 8 | static_cast<uint64_t>(sparsity * 100));
    Matrix<float> a = randomSparseMatrix(size, size, sparsity, rng);
    Matrix<float> b = randomSparseMatrix(size, size, sparsity, rng);

    SpGemmDevice device(GpuConfig::v100());
    SpGemmOptions serial;
    serial.dtype = dtype;
    serial.num_workers = 1;

    SpGemmResult r;
    p.word_ms = timeMs(reps, [&] { r = device.multiply(a, b, serial); });
    p.modeled_us = r.stats.timeUs();
    p.memory_bound = r.stats.bound == Bound::Memory;
    p.encoded_mb =
        (TwoLevelBitmapMatrix::encode(
             a, serial.tile_m, serial.tile_k, Major::Col,
             QuantSpec::forValues(dtype, a.data().data(),
                                  a.data().size()))
             .encodedBytes() +
         TwoLevelBitmapMatrix::encode(
             b, serial.tile_k, serial.tile_n, Major::Row,
             QuantSpec::forValues(dtype, b.data().data(),
                                  b.data().size()))
             .encodedBytes()) /
        1e6;

    SpGemmOptions pooled = serial;
    pooled.num_workers = 0;
    p.bitwise_equal = device.multiply(a, b, pooled).d.data() ==
                      r.d.data();
    if (dataTypeIsInteger(dtype)) {
        const Matrix<float> golden = refGemmQuant(
            a, b,
            QuantSpec::forValues(dtype, a.data().data(),
                                 a.data().size()),
            QuantSpec::forValues(dtype, b.data().data(),
                                 b.data().size()));
        p.bitwise_equal =
            p.bitwise_equal && r.d.data() == golden.data();
    }
    return p;
}

Point
runPoint(int size, double sparsity, int tile_k, int reps)
{
    Point p;
    p.m = p.n = p.k = size;
    p.tile_k = tile_k;
    p.sparsity = sparsity;

    Rng rng(0xbe9c << 8 | static_cast<uint64_t>(sparsity * 100));
    Matrix<float> a = randomSparseMatrix(size, size, sparsity, rng);
    Matrix<float> b = randomSparseMatrix(size, size, sparsity, rng);

    GpuConfig cfg = GpuConfig::v100();
    SpGemmDevice device(cfg);
    SpGemmOptions opts;
    opts.tile_k = tile_k;

    p.encode_ms = timeMs(reps, [&] {
        TwoLevelBitmapMatrix::encode(a, opts.tile_m, opts.tile_k,
                                     Major::Col);
        TwoLevelBitmapMatrix::encode(b, opts.tile_k, opts.tile_n,
                                     Major::Row);
    });

    TwoLevelBitmapMatrix a_enc = TwoLevelBitmapMatrix::encode(
        a, opts.tile_m, opts.tile_k, Major::Col);
    TwoLevelBitmapMatrix b_enc = TwoLevelBitmapMatrix::encode(
        b, opts.tile_k, opts.tile_n, Major::Row);

    Matrix<float> d_scalar;
    for (int r = 0; r < reps; ++r) {
        double compute = 0.0, merge = 0.0;
        d_scalar = scalarPipeline(device, a_enc, b_enc, opts,
                                  &compute, &merge);
        if (r == 0 || compute + merge <
                          p.scalar_compute_ms + p.scalar_merge_ms) {
            p.scalar_compute_ms = compute;
            p.scalar_merge_ms = merge;
        }
    }

    SpGemmOptions serial = opts;
    serial.num_workers = 1;
    Matrix<float> d_word;
    p.word_ms = timeMs(reps, [&] {
        d_word = device.multiplyEncoded(a_enc, b_enc, serial).d;
    });

    SpGemmOptions pooled = opts; // num_workers = 0: shared pool
    Matrix<float> d_par;
    p.parallel_ms = timeMs(reps, [&] {
        d_par = device.multiplyEncoded(a_enc, b_enc, pooled).d;
    });

    p.bitwise_equal = d_word.data() == d_scalar.data() &&
                      d_par.data() == d_scalar.data();
    return p;
}

void
writeJson(const char *path, const std::vector<Point> &points,
          const std::vector<PrecisionPoint> &precision, int reps,
          bool quick)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path);
        std::exit(1);
    }
    std::fprintf(f, "{\n  \"bench\": \"micro_spgemm\",\n");
    std::fprintf(f,
                 "  \"config\": {\"threads\": %d, "
                 "\"hardware_concurrency\": %u, \"reps\": %d, "
                 "\"quick\": %s,\n"
                 "    \"host_note\": \"wall-clock figures and "
                 "parallel_scaling ~ 1.0 reflect the bench "
                 "container's hardware_concurrency (1 = a single "
                 "hardware thread, where the pool cannot scale); "
                 "simulated *_us fields are machine-independent\"},"
                 "\n",
                 sharedThreadPool().numThreads(),
                 std::thread::hardware_concurrency(), reps,
                 quick ? "true" : "false");
    std::fprintf(f, "  \"points\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        const double scalar_total =
            p.scalar_compute_ms + p.scalar_merge_ms;
        std::fprintf(
            f,
            "    {\"m\": %d, \"n\": %d, \"k\": %d, \"tile_k\": %d, "
            "\"sparsity\": %.2f,\n"
            "     \"encode_ms\": %.3f, \"scalar_compute_ms\": %.3f, "
            "\"scalar_merge_ms\": %.3f,\n"
            "     \"word_ms\": %.3f, \"parallel_ms\": %.3f,\n"
            "     \"speedup_word_vs_scalar\": %.2f, "
            "\"parallel_scaling\": %.2f, \"bitwise_equal\": %s}%s\n",
            p.m, p.n, p.k, p.tile_k, p.sparsity, p.encode_ms,
            p.scalar_compute_ms, p.scalar_merge_ms, p.word_ms,
            p.parallel_ms, scalar_total / p.word_ms,
            p.word_ms / p.parallel_ms,
            p.bitwise_equal ? "true" : "false",
            i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"precision_points\": [\n");
    for (size_t i = 0; i < precision.size(); ++i) {
        const PrecisionPoint &p = precision[i];
        std::fprintf(
            f,
            "    {\"m\": %d, \"n\": %d, \"k\": %d, "
            "\"sparsity\": %.2f, \"dtype\": \"%s\",\n"
            "     \"modeled_us\": %.3f, \"encoded_mb\": %.3f, "
            "\"word_ms\": %.3f, \"memory_bound\": %s, "
            "\"bitwise_equal\": %s}%s\n",
            p.m, p.n, p.k, p.sparsity, dataTypeToken(p.dtype),
            p.modeled_us, p.encoded_mb, p.word_ms,
            p.memory_bound ? "true" : "false",
            p.bitwise_equal ? "true" : "false",
            i + 1 < precision.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args;
    args.out = "BENCH_spgemm.json";
    if (!bench::parseBenchArgs(argc, argv, "micro_spgemm", &args))
        return 2;
    const bool quick = args.quick;
    const int reps = args.reps;
    const char *out = args.out;

    bench::warmProcessState(GpuConfig::v100());

    std::vector<int> sizes = quick ? std::vector<int>{128}
                                   : std::vector<int>{256, 512};
    std::vector<double> sparsities =
        quick ? std::vector<double>{0.8, 0.9}
              : std::vector<double>{0.5, 0.7, 0.8, 0.9, 0.95};

    std::vector<Point> points;
    std::printf(
        "%5s %8s %6s | %9s %14s %9s %9s | %7s %7s\n", "size",
        "sparsity", "tileK", "encode ms", "scalar c+m ms", "word ms",
        "par ms", "speedup", "scaling");
    auto emit = [&](int size, double sp, int tile_k) {
        Point p = runPoint(size, sp, tile_k, reps);
        points.push_back(p);
        const double scalar =
            p.scalar_compute_ms + p.scalar_merge_ms;
        std::printf(
            "%5d %8.2f %6d | %9.3f %7.3f+%6.3f %9.3f %9.3f | %6.2fx "
            "%6.2fx%s\n",
            size, sp, tile_k, p.encode_ms, p.scalar_compute_ms,
            p.scalar_merge_ms, p.word_ms, p.parallel_ms,
            scalar / p.word_ms, p.word_ms / p.parallel_ms,
            p.bitwise_equal ? "" : "  [MISMATCH]");
        if (!p.bitwise_equal) {
            std::fprintf(stderr,
                         "FATAL: word/parallel result differs from "
                         "the scalar reference\n");
            std::exit(1);
        }
    };

    for (int size : sizes)
        for (double sp : sparsities)
            emit(size, sp, 32);
    // Tile-shape axis: vary the two-level K-chunk depth at the
    // paper's headline 90% operating point.
    if (!quick)
        for (int tile_k : {16, 64})
            emit(512, 0.9, tile_k);

    // Precision axis: simulated time and operand footprint of each
    // datatype at the headline operating point (the int8-vs-fp16
    // advantage check_bench.py gates lives here).
    std::vector<PrecisionPoint> precision;
    std::printf("\n%5s %8s %6s | %11s %11s %9s | %6s %6s\n", "size",
                "sparsity", "dtype", "modeled us", "encoded MB",
                "word ms", "bound", "equal");
    const int psize = quick ? 128 : 512;
    const std::vector<double> psparsities =
        quick ? std::vector<double>{0.9}
              : std::vector<double>{0.5, 0.9};
    for (double sp : psparsities) {
        for (DataType dtype :
             {DataType::Fp16, DataType::Bf16, DataType::Int8,
              DataType::Int4}) {
            PrecisionPoint p =
                runPrecisionPoint(psize, sp, dtype, reps);
            precision.push_back(p);
            std::printf("%5d %8.2f %6s | %11.3f %11.3f %9.3f | %6s "
                        "%6s%s\n",
                        p.m, p.sparsity, dataTypeToken(p.dtype),
                        p.modeled_us, p.encoded_mb, p.word_ms,
                        p.memory_bound ? "mem" : "comp",
                        p.bitwise_equal ? "yes" : "NO",
                        p.bitwise_equal ? "" : "  [MISMATCH]");
            if (!p.bitwise_equal) {
                std::fprintf(stderr,
                             "FATAL: %s path broke its in-domain "
                             "bitwise guarantee\n",
                             dataTypeToken(p.dtype));
                std::exit(1);
            }
        }
    }

    writeJson(out, points, precision, reps, quick);
    std::printf("\nwrote %s\n", out);
    return 0;
}
