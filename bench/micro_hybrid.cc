/**
 * @file
 * Micro-benchmark of the density-partitioned hybrid dispatcher
 * against the best single backend on the same request. Each point is
 * a functional GEMM whose A operand stripes fully dense and
 * near-empty 32-row tile groups at a controlled mix fraction, with a
 * uniform-sparsity B or a 2:4-conformant B (where the ampere path
 * becomes admissible and the intra-request split beats every
 * wholesale backend). The hybrid run is compared on simulated kernel
 * time against every single-backend candidate run timing-only over
 * the same concrete operands (gemm_options.functional = false: the
 * stats come from the identical cached profiles, without the
 * functional matrix work), and each hybrid tile class is checked
 * bitwise against its routed backend's full-request functional
 * output (row stripes depend only on their own A rows, so equality
 * is exact, not approximate).
 *
 * Results are written as JSON (default BENCH_hybrid.json; see the
 * bench_json CMake target). `--quick` runs a seconds-scale subset
 * for CI — small degenerate points plus the one compute-bound
 * 1024^3 mixed point whose natural split is the headline win; the
 * check_bench.py hybrid gate requires ratio_vs_best to stay >= 1
 * everywhere and materially above 1 at the mixed reference point.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/hybrid.h"
#include "core/session.h"
#include "model/pruning.h"
#include "tensor/matrix.h"

using namespace dstc;
using bench::timeMs;

namespace {

// Fully dense stripes against near-empty ones: the dual-side kernel
// wins any unstructured sparsity (the paper's Fig. 21 claim holds
// per class too), so the partition pays off exactly where some tile
// rows have no sparsity to exploit.
constexpr double kDenseGroupSparsity = 0.0;
constexpr double kSparseGroupSparsity = 0.98;

/**
 * A with `quarters` of every four 32-row tile groups near-dense and
 * the rest near-empty — interleaved, so the partition must read
 * per-group density rather than position.
 */
Matrix<float>
stripedA(int m, int k, int quarters, Rng &rng)
{
    Matrix<float> a(m, k);
    for (int r = 0; r < m; ++r) {
        const bool dense_group = (r / 32) % 4 < quarters;
        const double density = 1.0 - (dense_group
                                          ? kDenseGroupSparsity
                                          : kSparseGroupSparsity);
        for (int c = 0; c < k; ++c) {
            if (rng.bernoulli(density)) {
                const float v = rng.uniformFloat(-1.0f, 1.0f);
                a.at(r, c) = (v == 0.0f) ? 0.5f : v;
            }
        }
    }
    return a;
}

struct Point
{
    double mix = 0.0; // fraction of near-dense tile row groups
    double b_sparsity = 0.0;
    std::string b_kind; // "uniform" or "2of4"
    int m = 0, n = 0, k = 0;
    double hybrid_us = 0.0;
    double best_single_us = 0.0;
    std::string best_single;
    double ratio_vs_best = 0.0;
    std::string routing; // merged kernel name, e.g. hybrid[dense:8+dual:24]
    double threshold = -1.0;
    double hybrid_ms = 0.0;  // wall clock of the hybrid run
    double singles_ms = 0.0; // wall clock of all single-backend runs
    bool bitwise_equal = false;
};

/** Per-class bitwise check: every row stripe of the hybrid output
 *  must equal the routed backend's full-request output rows. */
bool
classStripesMatch(const HybridSplit &split, const Matrix<float> &hyb,
                  const std::map<Method, Matrix<float>> &singles)
{
    for (const HybridClass &cls : split.classes) {
        const auto it = singles.find(cls.method);
        if (it == singles.end())
            return false;
        const Matrix<float> &pure = it->second;
        for (int g : cls.groups) {
            const int r0 = g * 32;
            const int r1 = std::min(hyb.rows(), r0 + 32);
            for (int r = r0; r < r1; ++r)
                for (int c = 0; c < hyb.cols(); ++c)
                    if (hyb.at(r, c) != pure.at(r, c))
                        return false;
        }
    }
    return true;
}

Point
runPoint(Session &session, int m, int n, int k, int quarters,
         double b_sparsity, bool conformant_b, int reps)
{
    Point p;
    p.mix = quarters / 4.0;
    p.b_sparsity = b_sparsity;
    p.b_kind = conformant_b ? "2of4" : "uniform";
    p.m = m;
    p.n = n;
    p.k = k;

    Rng rng(0x4b1d << 8 | (quarters * 16 + conformant_b * 8) |
            static_cast<uint64_t>(b_sparsity * 4));
    Matrix<float> a = stripedA(m, k, quarters, rng);
    Matrix<float> b =
        conformant_b
            ? prune2of4(randomSparseMatrix(k, n, 0.0, rng))
            : randomSparseMatrix(k, n, b_sparsity, rng);

    KernelRequest hybrid_req = KernelRequest::gemm(a, b);
    hybrid_req.method = Method::Hybrid;

    KernelReport hyb;
    p.hybrid_ms = timeMs(reps, [&] { hyb = session.run(hybrid_req); });
    p.hybrid_us = hyb.timeUs();
    p.routing = hyb.stats.name;

    PlanContext ctx;
    ctx.cfg = &session.config();
    ctx.cache = &session.encodingCache();
    ctx.registry = &session.registry();
    const HybridSplit split = planHybridSplit(hybrid_req, ctx);
    p.threshold = split.threshold;

    // The ratio denominator: every single-backend candidate over the
    // same concrete operands, timing-only — the simulated stats come
    // from the identical cached profiles the functional run would
    // use, without paying its wall-clock.
    std::vector<Method> candidates = {Method::DualSparse,
                                      Method::Dense,
                                      Method::CusparseLike};
    if (conformant2of4(b))
        candidates.push_back(Method::AmpereSparse);
    p.best_single_us = 0.0;
    for (Method method : candidates) {
        KernelRequest req = KernelRequest::gemm(a, b);
        req.method = method;
        req.gemm_options.functional = false;
        KernelReport report;
        p.singles_ms += timeMs(1, [&] { report = session.run(req); });
        const double us = report.timeUs();
        if (p.best_single.empty() || us < p.best_single_us) {
            p.best_single_us = us;
            p.best_single = methodToken(method);
        }
    }

    // The per-class bitwise references: only the backends the split
    // actually routed to need a functional wholesale run.
    std::map<Method, Matrix<float>> single_d;
    for (const HybridClass &cls : split.classes) {
        if (single_d.count(cls.method))
            continue;
        KernelRequest req = KernelRequest::gemm(a, b);
        req.method = cls.method;
        KernelReport report;
        p.singles_ms += timeMs(1, [&] { report = session.run(req); });
        if (report.d)
            single_d.emplace(cls.method, *report.d);
    }

    p.ratio_vs_best = p.best_single_us / p.hybrid_us;
    p.bitwise_equal =
        hyb.d != nullptr && classStripesMatch(split, *hyb.d, single_d);
    return p;
}

void
writeJson(const char *path, const std::vector<Point> &points,
          int reps, bool quick)
{
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path);
        std::exit(1);
    }
    std::fprintf(f, "{\n  \"bench\": \"micro_hybrid\",\n");
    std::fprintf(
        f,
        "  \"config\": {\"threads\": %d, \"hardware_concurrency\": "
        "%u, \"reps\": %d, \"quick\": %s,\n"
        "    \"host_note\": \"wall-clock ratios and parallel_scaling "
        "~ 1.0 reflect the single-hardware-thread bench container; "
        "simulated *_us fields are machine-independent\"},\n",
        sharedThreadPool().numThreads(),
        std::thread::hardware_concurrency(), reps,
        quick ? "true" : "false");
    std::fprintf(f, "  \"points\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        std::fprintf(
            f,
            "    {\"mix\": %.2f, \"b_sparsity\": %.2f, \"b_kind\": "
            "\"%s\", \"m\": %d, \"n\": %d, \"k\": %d,\n"
            "     \"hybrid_us\": %.4f, \"best_single_us\": %.4f, "
            "\"best_single\": \"%s\", \"ratio_vs_best\": %.4f,\n"
            "     \"routing\": \"%s\", \"threshold\": %.4f, "
            "\"hybrid_ms\": %.3f, \"singles_ms\": %.3f, "
            "\"bitwise_equal\": %s}%s\n",
            p.mix, p.b_sparsity, p.b_kind.c_str(), p.m, p.n, p.k,
            p.hybrid_us, p.best_single_us, p.best_single.c_str(),
            p.ratio_vs_best, p.routing.c_str(), p.threshold,
            p.hybrid_ms, p.singles_ms,
            p.bitwise_equal ? "true" : "false",
            i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args;
    args.out = "BENCH_hybrid.json";
    if (!bench::parseBenchArgs(argc, argv, "micro_hybrid", &args))
        return 2;

    bench::warmProcessState(GpuConfig::v100());
    Session session;

    std::vector<Point> points;
    std::printf("%4s %6s %8s %14s | %10s %10s %9s %6s | %s\n", "mix",
                "b sp", "b kind", "shape", "hybrid us", "best us",
                "best", "ratio", "routing");
    auto emit = [&](int m, int n, int k, int quarters, double sb,
                    bool conformant) {
        Point p = runPoint(session, m, n, k, quarters, sb, conformant,
                           args.reps);
        points.push_back(p);
        std::printf("%4.2f %6.2f %8s %4dx%4dx%4d | %10.2f %10.2f "
                    "%9s %5.2fx | %s%s\n",
                    p.mix, p.b_sparsity, p.b_kind.c_str(), p.m, p.n,
                    p.k, p.hybrid_us, p.best_single_us,
                    p.best_single.c_str(), p.ratio_vs_best,
                    p.routing.c_str(),
                    p.bitwise_equal ? "" : "  [MISMATCH]");
        if (!p.bitwise_equal) {
            std::fprintf(stderr,
                         "FATAL: a hybrid tile class differs from "
                         "its routed backend's reference rows\n");
            std::exit(1);
        }
    };

    // The split pays off where the request is compute-bound (every
    // per-class slice re-reads the full B, so memory-bound shapes
    // prefer one condensed pass) and where the dense stripes admit a
    // backend that beats dual-side on zero-sparsity tiles — the 2:4
    // path on a conformant B. That is the 1024^3 2:4 mixed region;
    // smaller shapes and uniform-B points degenerate to wholesale
    // delegation (ratio exactly 1) and prove the planner refuses
    // unprofitable splits.
    if (args.quick) {
        // Degenerate + no-split coverage at the cheap 512^3 face,
        // plus the one compute-bound mixed point whose natural split
        // is the headline win (same operating key as the full
        // sweep's reference point).
        for (int quarters : {0, 2, 4})
            emit(512, 512, 512, quarters, 0.7, false);
        emit(512, 512, 512, 2, 0.0, true);
        emit(1024, 1024, 1024, 3, 0.0, true);
    } else {
        const std::vector<int> mixes = {0, 1, 2, 3, 4};
        for (int quarters : mixes)
            for (double sb : {0.5, 0.7})
                emit(1024, 1024, 1024, quarters, sb, false);
        // The 2:4-conformant B axis: ampere joins the candidate set,
        // so fully dense classes route to the 2:4 path while the
        // near-empty ones stay on the dual-sparse kernel — the
        // region where the intra-request split beats every wholesale
        // backend.
        for (int quarters : mixes)
            emit(1024, 1024, 1024, quarters, 0.0, true);
    }

    writeJson(args.out, points, args.reps, args.quick);
    std::printf("\nwrote %s\n", args.out);
    return 0;
}
