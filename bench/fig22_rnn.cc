/** @file Fig. 22, RNN language-model panel. */
#include "fig22_common.h"

int
main()
{
    dstc::bench::runGemmPanel(dstc::makeRnnLM());
    std::printf("\npaper: average Dual Sparse speedup 6.74x on the "
                "GEMM models, 3.46x over Single Sparse\n");
    return 0;
}
