/**
 * @file
 * Session-request one-liners shared by the ablation / efficiency
 * benches: each helper builds the KernelRequest a bench point needs
 * and runs it through the plan-execute API — every execution path
 * here is a Backend registration.
 */
#ifndef DSTC_BENCH_SESSION_UTIL_H
#define DSTC_BENCH_SESSION_UTIL_H

#include "core/session.h"

namespace dstc {
namespace bench {

/** Dual-side SpGEMM time from popcount profiles. */
inline KernelStats
spgemmTime(Session &session, const SparsityProfile &a,
           const SparsityProfile &b, const SpGemmOptions &options = {})
{
    KernelRequest req = KernelRequest::gemm(a, b);
    req.method = Method::DualSparse;
    req.gemm_options = options;
    return session.run(req).stats;
}

/** Dual-side SpGEMM stats over concrete operands (timing options —
 *  pass functional=false for stats-only sweeps). */
inline KernelStats
spgemmStats(Session &session, const Matrix<float> &a,
            const Matrix<float> &b, const SpGemmOptions &options)
{
    KernelRequest req = KernelRequest::gemm(a, b);
    req.method = Method::DualSparse;
    req.gemm_options = options;
    return session.run(req).stats;
}

/** Dense CUTLASS-like GEMM time. */
inline KernelStats
denseGemmTime(Session &session, int64_t m, int64_t n, int64_t k)
{
    KernelRequest req = KernelRequest::gemm(m, n, k);
    req.method = Method::Dense;
    return session.run(req).stats;
}

/** Vector-wise sparse TC [72] GEMM time. */
inline KernelStats
zhuGemmTime(Session &session, int64_t m, int64_t n, int64_t k,
            double weight_sparsity)
{
    KernelRequest req =
        KernelRequest::gemm(m, n, k, 0.0, weight_sparsity);
    req.method = Method::ZhuSparse;
    return session.run(req).stats;
}

/** Ampere 2:4 sparse TC GEMM time. */
inline KernelStats
ampereGemmTime(Session &session, int64_t m, int64_t n, int64_t k,
               double weight_sparsity)
{
    KernelRequest req =
        KernelRequest::gemm(m, n, k, 0.0, weight_sparsity);
    req.method = Method::AmpereSparse;
    return session.run(req).stats;
}

/** cuSPARSE-like CSR SpGEMM expected time at given densities. */
inline KernelStats
cusparseTime(Session &session, int64_t m, int64_t n, int64_t k,
             double density_a, double density_b)
{
    KernelRequest req = KernelRequest::gemm(
        m, n, k, 1.0 - density_a, 1.0 - density_b);
    req.method = Method::CusparseLike;
    return session.run(req).stats;
}

} // namespace bench
} // namespace dstc

#endif // DSTC_BENCH_SESSION_UTIL_H
