/**
 * @file
 * Table III: normalized im2col time (dense vs CSR vs bitmap) on the
 * ResNet-18 layer the paper uses — feature map 56x56, filter 3x3,
 * 128 in/out channels — across feature-map sparsities 0% to 99.9%.
 *
 * These are real wall-clock measurements of the three functional
 * im2col implementations (google-benchmark), normalized to the dense
 * case per sparsity point like the paper's table. Absolute CPU times
 * differ from a GPU, but the mechanism being measured — CSR's
 * data-dependent lookups vs the bitmap's word operations — is the
 * same, so the ordering and the convergence at extreme sparsity
 * reproduce.
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "im2col/bitmap_im2col.h"
#include "im2col/csr_im2col.h"
#include "im2col/dense_im2col.h"
#include "model/sparsity_gen.h"

using namespace dstc;

namespace {

ConvShape
tableShape()
{
    ConvShape shape;
    shape.batch = 1;
    shape.in_c = 128;
    shape.in_h = shape.in_w = 56;
    shape.out_c = 128;
    shape.kernel = 3;
    shape.stride = 1;
    shape.pad = 1;
    return shape;
}

const std::vector<double> kSparsities = {0.0,  0.25, 0.5,
                                         0.75, 0.99, 0.999};

Tensor4d
makeInput(double sparsity)
{
    Rng rng(static_cast<uint64_t>(sparsity * 1e4) + 5);
    return reluActivationTensor(1, 128, 56, 56, sparsity, rng);
}

double
timeUs(const std::function<void()> &fn, int reps = 3)
{
    double best = 1e30;
    for (int i = 0; i < reps; ++i) {
        auto start = std::chrono::steady_clock::now();
        fn();
        auto stop = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double, std::micro>(stop - start)
                      .count());
    }
    return best;
}

void
benchDense(benchmark::State &state)
{
    Tensor4d input = makeInput(kSparsities[state.range(0)]);
    ConvShape shape = tableShape();
    for (auto _ : state)
        benchmark::DoNotOptimize(im2colExplicit(input, shape));
}

void
benchCsr(benchmark::State &state)
{
    Tensor4d input = makeInput(kSparsities[state.range(0)]);
    ConvShape shape = tableShape();
    CsrFeatureMap fmap = CsrFeatureMap::encode(input);
    for (auto _ : state)
        benchmark::DoNotOptimize(im2colFromCsr(fmap, shape));
}

void
benchBitmap(benchmark::State &state)
{
    Tensor4d input = makeInput(kSparsities[state.range(0)]);
    ConvShape shape = tableShape();
    BitmapFeatureMap fmap = BitmapFeatureMap::encode(input);
    for (auto _ : state)
        benchmark::DoNotOptimize(im2colFromBitmap(fmap, shape));
}

} // namespace

BENCHMARK(benchDense)->DenseRange(0, 5)->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(benchCsr)->DenseRange(0, 5)->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(benchBitmap)->DenseRange(0, 5)->Unit(benchmark::kMillisecond)
    ->Iterations(2);

int
main(int argc, char **argv)
{
    std::printf("== Table III: normalized im2col time "
                "(ResNet-18 layer: fmap 56x56, filter 3x3, 128 ch) "
                "==\n\n");

    ConvShape shape = tableShape();
    TextTable table;
    table.setHeader({"Sparsity (%)", "Dense Im2col", "CSR Im2col",
                     "Bitmap Im2col"});
    for (double sparsity : kSparsities) {
        Tensor4d input = makeInput(sparsity);
        CsrFeatureMap csr_fmap = CsrFeatureMap::encode(input);
        BitmapFeatureMap bm_fmap = BitmapFeatureMap::encode(input);

        const double dense_us =
            timeUs([&] { im2colExplicit(input, shape); });
        const double csr_us =
            timeUs([&] { im2colFromCsr(csr_fmap, shape); }, 1);
        const double bitmap_us =
            timeUs([&] { im2colFromBitmap(bm_fmap, shape); });

        table.addRow({fmtDouble(sparsity * 100.0, 1), "1",
                      fmtDouble(csr_us / dense_us, 1),
                      fmtDouble(bitmap_us / dense_us, 2)});
    }
    table.print();
    std::printf(
        "\npaper: CSR 101.3/67.1/45.2/14.5/4.7/1.2, bitmap "
        "8.31/6.87/4.73/2.5/1.5/1.1 (GPU); shape reproduced on CPU\n\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
