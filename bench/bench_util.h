/**
 * @file
 * Timing scaffolding shared by the micro benches (micro_spgemm,
 * micro_spconv): wall clock, best-of-N measurement, argument parsing
 * for the common --quick/--reps/--out flags, and the warm-up that
 * keeps one-time process state out of the first timed region.
 */
#ifndef DSTC_BENCH_BENCH_UTIL_H
#define DSTC_BENCH_BENCH_UTIL_H

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/thread_pool.h"
#include "timing/gpu_config.h"
#include "timing/merge_model.h"

namespace dstc {
namespace bench {

inline double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Best-of-@p reps wall time of @p fn, in milliseconds. */
template <typename Fn>
double
timeMs(int reps, Fn &&fn)
{
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        const double t0 = nowMs();
        fn();
        best = std::min(best, nowMs() - t0);
    }
    return best;
}

/** The common micro-bench command line. */
struct BenchArgs
{
    bool quick = false;
    int reps = 3;
    const char *out = nullptr;
};

/**
 * Parse --quick / --reps N / --out PATH. An explicit --reps wins
 * over the quick default; --reps must be a positive integer (a
 * zero-rep "measurement" would report never-executed runs as green).
 * Returns false (after printing usage) on any invalid argument.
 */
inline bool
parseBenchArgs(int argc, char **argv, const char *name,
               BenchArgs *args)
{
    if (args->out == nullptr) {
        std::fprintf(stderr,
                     "error: %s: BenchArgs.out has no default output "
                     "path\n",
                     name);
        return false;
    }
    int reps = 0; // 0 = not given
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick")) {
            args->quick = true;
        } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
            char *end = nullptr;
            reps = static_cast<int>(std::strtol(argv[++i], &end, 10));
            if (*argv[i] == '\0' || *end != '\0' || reps < 1) {
                std::fprintf(stderr,
                             "error: --reps needs a positive "
                             "integer, got '%s'\n",
                             argv[i]);
                return false;
            }
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            args->out = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--reps N] [--out "
                         "PATH]\n",
                         name);
            return false;
        }
    }
    // Best-of-3 even in quick mode: still seconds-scale, and the CI
    // gate compares ratios that a single-shot spike would skew.
    if (reps > 0)
        args->reps = reps;
    else
        args->reps = 3;
    return true;
}

/**
 * Pull one-time process state out of the first timed region: the
 * shared pool's thread spawn and the merge model's process-shared
 * Monte-Carlo memo must not be charged to whichever measurement
 * happens to trigger them first.
 */
inline void
warmProcessState(const GpuConfig &cfg)
{
    sharedThreadPool();
    MergeCostModel(cfg.accum_banks, cfg.operand_collector)
        .tileCycles(8 * cfg.accum_banks, 8);
}

} // namespace bench
} // namespace dstc

#endif // DSTC_BENCH_BENCH_UTIL_H
