/** @file Fig. 22, ResNet-18 panel. */
#include "fig22_common.h"

int
main()
{
    dstc::bench::runConvPanel(dstc::makeResnet18());
    std::printf("\npaper note: small late layers (e.g. 5-4) see small "
                "speedups — they are bound by data movement\n");
    return 0;
}
