/** @file Fig. 22, BERT-base encoder panel. */
#include "fig22_common.h"

int
main()
{
    dstc::bench::runGemmPanel(dstc::makeBertBase());
    std::printf("\npaper: Single Sparse 1.20x-1.77x (capped by the "
                "fixed 75%% format); Dual Sparse 3.62x-8.45x\n");
    return 0;
}
