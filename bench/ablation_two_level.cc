/**
 * @file
 * Ablation: one-level vs two-level bitmap encoding (Sec. VI-D).
 * With clustered high sparsity, the warp-bitmap lets entire warp
 * tiles be skipped and shrinks the encoded operand footprint; this
 * bench quantifies both effects across sparsity and clustering.
 */
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "core/session.h"
#include "session_util.h"
#include "model/sparsity_gen.h"
#include "sparse/two_level.h"

using namespace dstc;

int
main()
{
    Session session;
    Rng rng(77);
    const int n = 1024;

    std::printf("== Ablation: two-level bitmap (warp-bitmap skipping) "
                "==\n\n");
    TextTable table;
    table.setHeader({"sparsity", "cluster", "tiles skipped (%)",
                     "compute w/o skip (us)", "compute w/ skip (us)",
                     "skip speedup", "encoding bytes 1-lvl/2-lvl"});

    for (double sparsity : {0.9, 0.97, 0.99}) {
        for (double cluster : {1.0, 8.0, 32.0}) {
            Matrix<float> a = clusteredSparseMatrix(n, n, sparsity, 32,
                                                    cluster, rng);
            Matrix<float> b = clusteredSparseMatrix(n, n, sparsity, 32,
                                                    cluster, rng);
            SpGemmOptions skip;
            skip.functional = false;
            SpGemmOptions no_skip = skip;
            no_skip.two_level = false;

            KernelStats with_stats =
                bench::spgemmStats(session, a, b, skip);
            KernelStats without_stats =
                bench::spgemmStats(session, a, b, no_skip);

            const double total_tiles = static_cast<double>(
                with_stats.warp_tiles + with_stats.warp_tiles_skipped);
            BitmapMatrix one = BitmapMatrix::encode(a, Major::Col);
            TwoLevelBitmapMatrix two =
                TwoLevelBitmapMatrix::encode(a, 32, 32, Major::Col);

            table.addRow(
                {fmtDouble(sparsity, 2), fmtDouble(cluster, 0),
                 fmtDouble(100.0 * with_stats.warp_tiles_skipped /
                               total_tiles,
                           1),
                 fmtDouble(without_stats.compute_us, 1),
                 fmtDouble(with_stats.compute_us, 1),
                 fmtSpeedup(without_stats.compute_us /
                            with_stats.compute_us),
                 std::to_string(one.encodedBytes()) + "/" +
                     std::to_string(two.encodedBytes())});
        }
    }
    table.print();
    std::printf("\nUniform patterns (cluster=1) rarely produce empty "
                "32x32 tiles, so skipping only pays off once pruning "
                "clusters the non-zeros — the Sec. VI-D effect.\n");
    return 0;
}
