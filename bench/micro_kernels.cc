/**
 * @file
 * Micro-benchmarks (google-benchmark) of the substrate kernels:
 * bitmap encode/decode, popcount profiling, condensing, warp-tile
 * SpGEMM, and the cycle-accurate accumulation-buffer simulator.
 */
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "gemm/sparsity_profile.h"
#include "gemm/spgemm_warp.h"
#include "sparse/bitmap.h"
#include "sparse/condensed.h"
#include "sparse/two_level.h"
#include "tensor/matrix.h"
#include "timing/accum_buffer.h"

using namespace dstc;

namespace {

Matrix<float>
input(int n, double sparsity)
{
    Rng rng(static_cast<uint64_t>(n) * 31 +
            static_cast<uint64_t>(sparsity * 100));
    return randomSparseMatrix(n, n, sparsity, rng);
}

void
benchBitmapEncode(benchmark::State &state)
{
    Matrix<float> m = input(512, state.range(0) / 100.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(BitmapMatrix::encode(m, Major::Col));
    state.SetItemsProcessed(state.iterations() * m.size());
}

void
benchBitmapDecode(benchmark::State &state)
{
    BitmapMatrix bm = BitmapMatrix::encode(
        input(512, state.range(0) / 100.0), Major::Col);
    for (auto _ : state)
        benchmark::DoNotOptimize(bm.decode());
}

void
benchTwoLevelEncode(benchmark::State &state)
{
    Matrix<float> m = input(512, state.range(0) / 100.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            TwoLevelBitmapMatrix::encode(m, 32, 32, Major::Col));
}

void
benchCondense(benchmark::State &state)
{
    BitmapMatrix bm = BitmapMatrix::encode(
        input(512, state.range(0) / 100.0), Major::Col);
    for (auto _ : state)
        benchmark::DoNotOptimize(CondensedMatrix::fromBitmap(bm, 8));
}

void
benchProfileExtraction(benchmark::State &state)
{
    Matrix<float> m = input(1024, 0.5);
    for (auto _ : state)
        benchmark::DoNotOptimize(SparsityProfile::fromMatrixA(m, 32));
}

void
benchWarpTile(benchmark::State &state)
{
    GpuConfig cfg = GpuConfig::v100();
    SpGemmWarpEngine engine(cfg);
    Matrix<float> a = input(32, state.range(0) / 100.0);
    Matrix<float> b = input(32, state.range(0) / 100.0);
    BitmapMatrix a_bm = BitmapMatrix::encode(a, Major::Col);
    BitmapMatrix b_bm = BitmapMatrix::encode(b, Major::Row);
    Matrix<float> accum(32, 32);
    for (auto _ : state) {
        accum.fill(0.0f);
        benchmark::DoNotOptimize(
            engine.computeTile(a_bm, b_bm, &accum));
    }
}

void
benchAccumBufferSim(benchmark::State &state)
{
    Rng rng(7);
    MergeTrace trace;
    for (int i = 0; i < 128; ++i) {
        std::vector<int> addrs;
        for (int j = 0; j < 64; ++j)
            addrs.push_back(static_cast<int>(rng.uniformInt(1024)));
        trace.instr_addrs.push_back(std::move(addrs));
    }
    AccumBufferSim sim(128, state.range(0) != 0, 8);
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.simulateSparse(trace));
}

} // namespace

BENCHMARK(benchBitmapEncode)->Arg(0)->Arg(50)->Arg(90);
BENCHMARK(benchBitmapDecode)->Arg(0)->Arg(90);
BENCHMARK(benchTwoLevelEncode)->Arg(50)->Arg(99);
BENCHMARK(benchCondense)->Arg(0)->Arg(75);
BENCHMARK(benchProfileExtraction);
BENCHMARK(benchWarpTile)->Arg(0)->Arg(50)->Arg(90);
BENCHMARK(benchAccumBufferSim)->Arg(0)->Arg(1);

BENCHMARK_MAIN();
