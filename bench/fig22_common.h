/**
 * @file
 * Shared harness for the five Fig. 22 panels: layer-wise and
 * full-model speedups for one DNN workload.
 *
 * CNN models compare five strategies normalized to Dense Implicit;
 * GEMM models (BERT, RNN) compare three normalized to Dense GEMM,
 * exactly as the paper's figure does.
 */
#ifndef DSTC_BENCH_FIG22_COMMON_H
#define DSTC_BENCH_FIG22_COMMON_H

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "core/engine.h"
#include "model/zoo.h"

namespace dstc {
namespace bench {

/** Run a CNN model panel: 5 conv strategies per layer. */
inline void
runConvPanel(const DnnModel &model)
{
    DstcEngine engine;
    std::printf("== Fig. 22 panel: %s (normalized to Dense Implicit) "
                "==\n\n",
                model.name.c_str());

    const std::vector<ConvMethod> methods = {
        ConvMethod::DenseExplicit, ConvMethod::DenseImplicit,
        ConvMethod::SingleSparseExplicit,
        ConvMethod::SingleSparseImplicit,
        ConvMethod::DualSparseImplicit};

    TextTable table;
    table.setHeader({"layer", "wsp", "asp", "DenseExp", "DenseImp",
                     "1S-Exp", "1S-Imp", "Dual-Imp"});

    std::vector<double> totals(methods.size(), 0.0);
    uint64_t seed = 1;
    for (const auto &layer : model.conv_layers) {
        std::vector<double> times;
        for (ConvMethod method : methods) {
            const double t =
                engine
                    .convTime(layer.shape, method,
                              layer.weight_sparsity,
                              layer.act_sparsity, seed,
                              layer.weight_cluster, layer.act_cluster)
                    .timeUs();
            times.push_back(t);
        }
        ++seed;
        for (size_t i = 0; i < methods.size(); ++i)
            totals[i] += times[i];
        const double base = times[1]; // Dense Implicit
        table.addRow({layer.name, fmtDouble(layer.weight_sparsity, 2),
                      fmtDouble(layer.act_sparsity, 2),
                      fmtSpeedup(base / times[0]),
                      fmtSpeedup(1.0),
                      fmtSpeedup(base / times[2]),
                      fmtSpeedup(base / times[3]),
                      fmtSpeedup(base / times[4])});
    }
    // Full-model GEMM layers (e.g. Mask R-CNN's box head) fold into
    // the totals with the three GEMM methods mapped onto columns.
    for (const auto &layer : model.gemm_layers) {
        const double dense =
            engine.denseGemmTime(layer.m, layer.n, layer.k).timeUs();
        const double zhu = engine
                               .zhuGemmTime(layer.m, layer.n, layer.k,
                                            layer.weight_sparsity)
                               .timeUs();
        Rng rng(seed++);
        SparsityProfile pa = SparsityProfile::randomA(
            layer.m, layer.k, 32, 1.0 - layer.act_sparsity,
            layer.act_cluster, rng);
        SparsityProfile pb = SparsityProfile::randomA(
            layer.n, layer.k, 32, 1.0 - layer.weight_sparsity,
            layer.weight_cluster, rng);
        const double ours = engine.spgemmTime(pa, pb).timeUs();
        totals[0] += dense;
        totals[1] += dense;
        totals[2] += zhu;
        totals[3] += zhu;
        totals[4] += ours;
        table.addRow({layer.name + " (GEMM)",
                      fmtDouble(layer.weight_sparsity, 2),
                      fmtDouble(layer.act_sparsity, 2),
                      fmtSpeedup(1.0), fmtSpeedup(1.0),
                      fmtSpeedup(dense / zhu), fmtSpeedup(dense / zhu),
                      fmtSpeedup(dense / ours)});
    }

    const double base_total = totals[1];
    table.addRow({"FULL MODEL", "", "",
                  fmtSpeedup(base_total / totals[0]), fmtSpeedup(1.0),
                  fmtSpeedup(base_total / totals[2]),
                  fmtSpeedup(base_total / totals[3]),
                  fmtSpeedup(base_total / totals[4])});
    table.print();
}

/** Run a GEMM model panel (BERT, RNN): 3 strategies per layer. */
inline void
runGemmPanel(const DnnModel &model)
{
    DstcEngine engine;
    std::printf("== Fig. 22 panel: %s (normalized to Dense GEMM) "
                "==\n\n",
                model.name.c_str());

    TextTable table;
    table.setHeader({"layer", "m x n x k", "wsp", "Dense",
                     "Single Sparse", "Dual Sparse"});
    double dense_total = 0.0, zhu_total = 0.0, ours_total = 0.0;
    uint64_t seed = 100;
    for (const auto &layer : model.gemm_layers) {
        const double dense =
            engine.denseGemmTime(layer.m, layer.n, layer.k).timeUs();
        const double zhu = engine
                               .zhuGemmTime(layer.m, layer.n, layer.k,
                                            layer.weight_sparsity)
                               .timeUs();
        Rng rng(seed++);
        SparsityProfile pa = SparsityProfile::randomA(
            layer.m, layer.k, 32, 1.0 - layer.act_sparsity,
            layer.act_cluster, rng);
        SparsityProfile pb = SparsityProfile::randomA(
            layer.n, layer.k, 32, 1.0 - layer.weight_sparsity,
            layer.weight_cluster, rng);
        const double ours = engine.spgemmTime(pa, pb).timeUs();
        dense_total += dense;
        zhu_total += zhu;
        ours_total += ours;
        table.addRow({layer.name,
                      std::to_string(layer.m) + "x" +
                          std::to_string(layer.n) + "x" +
                          std::to_string(layer.k),
                      fmtDouble(layer.weight_sparsity, 2),
                      fmtSpeedup(1.0), fmtSpeedup(dense / zhu),
                      fmtSpeedup(dense / ours)});
    }
    table.addRow({"FULL MODEL", "", "", fmtSpeedup(1.0),
                  fmtSpeedup(dense_total / zhu_total),
                  fmtSpeedup(dense_total / ours_total)});
    table.print();
}

} // namespace bench
} // namespace dstc

#endif // DSTC_BENCH_FIG22_COMMON_H
