/**
 * @file
 * Shared harness for the five Fig. 22 panels: layer-wise and
 * full-model speedups for one DNN workload.
 *
 * CNN models compare five strategies normalized to Dense Implicit;
 * GEMM models (BERT, RNN) compare three normalized to Dense GEMM,
 * exactly as the paper's figure does.
 *
 * All kernel executions go through the Session / KernelRegistry
 * plan-execute API: each panel builds one KernelRequest per (layer,
 * strategy) pair and submits the whole panel as a single batch on
 * the session's worker pool.
 */
#ifndef DSTC_BENCH_FIG22_COMMON_H
#define DSTC_BENCH_FIG22_COMMON_H

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "core/session.h"
#include "model/zoo.h"

namespace dstc {
namespace bench {

/** One KernelRequest per (GEMM layer, strategy) for the three GEMM
 *  columns: Dense, Single Sparse (vector-wise), Dual Sparse. */
inline std::vector<KernelRequest>
gemmLayerRequests(const GemmLayerSpec &layer, uint64_t seed)
{
    std::vector<KernelRequest> requests;
    for (Method method : {Method::Dense, Method::ZhuSparse,
                          Method::DualSparse}) {
        KernelRequest req = KernelRequest::gemm(
            layer.m, layer.n, layer.k, layer.act_sparsity,
            layer.weight_sparsity);
        req.method = method;
        req.a_cluster = layer.act_cluster;
        req.b_cluster = layer.weight_cluster;
        req.seed = seed;
        req.tag = layer.name;
        requests.push_back(std::move(req));
    }
    return requests;
}

/** Run a CNN model panel: 5 conv strategies per layer. */
inline void
runConvPanel(const DnnModel &model)
{
    Session session;
    std::printf("== Fig. 22 panel: %s (normalized to Dense Implicit) "
                "==\n\n",
                model.name.c_str());

    const std::vector<std::pair<Method, Lowering>> strategies = {
        {Method::Dense, Lowering::Explicit},
        {Method::Dense, Lowering::Implicit},
        {Method::ZhuSparse, Lowering::Explicit},
        {Method::ZhuSparse, Lowering::Implicit},
        {Method::DualSparse, Lowering::Implicit}};

    // One request per (layer, strategy), submitted as one batch.
    std::vector<KernelRequest> requests;
    uint64_t seed = 1;
    for (const auto &layer : model.conv_layers) {
        for (const auto &[method, lowering] : strategies) {
            KernelRequest req = KernelRequest::conv(
                layer.shape, layer.weight_sparsity,
                layer.act_sparsity);
            req.method = method;
            req.lowering = lowering;
            req.b_cluster = layer.weight_cluster;
            req.a_cluster = layer.act_cluster;
            req.seed = seed;
            req.tag = layer.name;
            requests.push_back(std::move(req));
        }
        ++seed;
    }
    const size_t gemm_begin = requests.size();
    // The seed counter continues from the conv layers, matching the
    // panel's original per-layer seed sequence.
    for (const auto &layer : model.gemm_layers)
        for (KernelRequest &req : gemmLayerRequests(layer, seed++))
            requests.push_back(std::move(req));

    std::vector<KernelReport> reports =
        session.runBatch(std::move(requests));

    TextTable table;
    table.setHeader({"layer", "wsp", "asp", "DenseExp", "DenseImp",
                     "1S-Exp", "1S-Imp", "Dual-Imp"});

    std::vector<double> totals(strategies.size(), 0.0);
    size_t idx = 0;
    for (const auto &layer : model.conv_layers) {
        std::vector<double> times;
        for (size_t s = 0; s < strategies.size(); ++s)
            times.push_back(reports[idx++].timeUs());
        for (size_t s = 0; s < strategies.size(); ++s)
            totals[s] += times[s];
        const double base = times[1]; // Dense Implicit
        table.addRow({layer.name, fmtDouble(layer.weight_sparsity, 2),
                      fmtDouble(layer.act_sparsity, 2),
                      fmtSpeedup(base / times[0]),
                      fmtSpeedup(1.0),
                      fmtSpeedup(base / times[2]),
                      fmtSpeedup(base / times[3]),
                      fmtSpeedup(base / times[4])});
    }
    // Full-model GEMM layers (e.g. Mask R-CNN's box head) fold into
    // the totals with the three GEMM methods mapped onto columns.
    idx = gemm_begin;
    for (const auto &layer : model.gemm_layers) {
        const double dense = reports[idx++].timeUs();
        const double zhu = reports[idx++].timeUs();
        const double ours = reports[idx++].timeUs();
        totals[0] += dense;
        totals[1] += dense;
        totals[2] += zhu;
        totals[3] += zhu;
        totals[4] += ours;
        table.addRow({layer.name + " (GEMM)",
                      fmtDouble(layer.weight_sparsity, 2),
                      fmtDouble(layer.act_sparsity, 2),
                      fmtSpeedup(1.0), fmtSpeedup(1.0),
                      fmtSpeedup(dense / zhu), fmtSpeedup(dense / zhu),
                      fmtSpeedup(dense / ours)});
    }

    const double base_total = totals[1];
    table.addRow({"FULL MODEL", "", "",
                  fmtSpeedup(base_total / totals[0]), fmtSpeedup(1.0),
                  fmtSpeedup(base_total / totals[2]),
                  fmtSpeedup(base_total / totals[3]),
                  fmtSpeedup(base_total / totals[4])});
    table.print();
}

/** Run a GEMM model panel (BERT, RNN): 3 strategies per layer. */
inline void
runGemmPanel(const DnnModel &model)
{
    Session session;
    std::printf("== Fig. 22 panel: %s (normalized to Dense GEMM) "
                "==\n\n",
                model.name.c_str());

    std::vector<KernelRequest> requests;
    uint64_t seed = 100;
    for (const auto &layer : model.gemm_layers)
        for (KernelRequest &req : gemmLayerRequests(layer, seed++))
            requests.push_back(std::move(req));

    std::vector<KernelReport> reports =
        session.runBatch(std::move(requests));

    TextTable table;
    table.setHeader({"layer", "m x n x k", "wsp", "Dense",
                     "Single Sparse", "Dual Sparse"});
    double dense_total = 0.0, zhu_total = 0.0, ours_total = 0.0;
    size_t idx = 0;
    for (const auto &layer : model.gemm_layers) {
        const double dense = reports[idx++].timeUs();
        const double zhu = reports[idx++].timeUs();
        const double ours = reports[idx++].timeUs();
        dense_total += dense;
        zhu_total += zhu;
        ours_total += ours;
        table.addRow({layer.name,
                      std::to_string(layer.m) + "x" +
                          std::to_string(layer.n) + "x" +
                          std::to_string(layer.k),
                      fmtDouble(layer.weight_sparsity, 2),
                      fmtSpeedup(1.0), fmtSpeedup(dense / zhu),
                      fmtSpeedup(dense / ours)});
    }
    table.addRow({"FULL MODEL", "", "", fmtSpeedup(1.0),
                  fmtSpeedup(dense_total / zhu_total),
                  fmtSpeedup(dense_total / ours_total)});
    table.print();
}

} // namespace bench
} // namespace dstc

#endif // DSTC_BENCH_FIG22_COMMON_H
