/**
 * @file
 * Ablation: does the dual-side design keep paying off on a
 * next-generation machine? The paper's conclusion positions the
 * technique as "shedding light for the next performance breakthrough
 * of future GPUs"; this bench re-runs the Fig. 21 anchor points on
 * an A100-class memory system (1.9x bandwidth, 40 MB L2) with the
 * same OTC arithmetic.
 */
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "core/session.h"
#include "session_util.h"

using namespace dstc;

namespace {

void
runMachine(const char *name, const GpuConfig &cfg)
{
    Session session(cfg);
    Rng rng(55);
    const int64_t n = 4096;
    const double dense_us = bench::denseGemmTime(session, n, n, n).timeUs();
    std::printf("-- %s: dense %lld^3 = %.0f us --\n", name,
                static_cast<long long>(n), dense_us);
    TextTable table;
    table.setHeader({"A sp. (%)", "B sp. (%)", "time (us)",
                     "speedup", "bound"});
    struct Point
    {
        double sa, sb, cluster;
    };
    for (const Point &p :
         {Point{0.0, 50.0, 1.0}, Point{50.0, 50.0, 1.0},
          Point{0.0, 99.0, 8.0}, Point{90.0, 99.0, 8.0},
          Point{99.9, 99.0, 8.0}}) {
        SparsityProfile pa = SparsityProfile::randomA(
            n, n, 32, 1.0 - p.sa / 100.0, p.sa > 0 ? p.cluster : 1.0,
            rng);
        SparsityProfile pb = SparsityProfile::randomA(
            n, n, 32, 1.0 - p.sb / 100.0, p.cluster, rng);
        KernelStats stats = bench::spgemmTime(session, pa, pb);
        table.addRow({fmtDouble(p.sa, 1), fmtDouble(p.sb, 1),
                      fmtDouble(stats.timeUs(), 0),
                      fmtSpeedup(dense_us / stats.timeUs()),
                      stats.bound == Bound::Compute ? "compute"
                                                    : "memory"});
    }
    table.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("== Future-GPU ablation: same OTC arithmetic, newer "
                "memory system ==\n\n");
    runMachine("V100 (paper's machine)", GpuConfig::v100());
    runMachine("A100-class", GpuConfig::a100Like());
    std::printf("The sparse kernel's high-sparsity points are memory-"
                "bound on the V100; the A100-class memory system "
                "converts that headroom into further speedup, i.e. "
                "the technique scales forward.\n");
    return 0;
}
