#!/usr/bin/env python3
"""CI bench-regression gate.

Re-runs the micro benches in --quick mode and compares them against
the checked-in perf trajectories (BENCH_spgemm.json, BENCH_spconv.json,
BENCH_encode.json, BENCH_cluster.json, BENCH_spmm.json, ...):

 1. Functional gate (hard): every point, measured and reference, must
    report bitwise_equal — the word-parallel pipelines must reproduce
    their scalar references exactly, and cluster reports must
    reproduce serial single-Session execution. The benches also
    self-check this and exit non-zero on divergence.
 2. Speedup gate: for each measured point, the word-vs-scalar speedup
    must stay above an absolute floor (the word path may never be
    slower than the scalar reference) and above `--tolerance` times
    the worst matching reference speedup. Points are matched on their
    operating keys (sparsity / method / stride / clustered), not on
    shape or machine, so the gate survives CI hardware variance while
    still catching real pipeline regressions.
 3. Sanity gate: all stage timings must be positive and the pooled
    path must not be catastrophically slower than the single-thread
    word path (`--parallel-slack`).
 4. Placement-quality gate (micro_cluster): on every heterogeneous
    device mix, cost-model placement must beat round-robin simulated
    makespan (ratio >= 1), and the ratio must stay above
    `--tolerance` times the checked-in reference ratio. Simulated
    makespans are deterministic, so this gate is immune to CI
    hardware variance.
 5. Serving gate (micro_serve): on every heterogeneous device mix
    and load level, deadline-aware placement must beat round-robin
    on simulated p99 tail latency and goodput (ratio >= 1), with the
    same reference-ratio tolerance; every point must also replay
    bitwise against serial single-Session execution. Fault sweep
    points (faults != "") additionally gate recovery quality: under
    the crash script, failover goodput must match or beat the
    no-recovery baseline (and stay within tolerance of the reference
    ratio); under transient-only faults with retry, zero requests
    may be lost. Fault timelines are exactly as deterministic as
    healthy ones, so these are not flaky thresholds.
 6. Hybrid-dispatch gate (micro_hybrid): on every point, reference
    and measured, the density-partitioned hybrid must match or beat
    the best single backend on simulated kernel time
    (`--hybrid-floor`); the reference sweep and the measured quick
    run must both show a material win (`--hybrid-win`) at a
    mixed-density point; and measured ratios must track their
    key-matched reference within `--hybrid-tolerance` (the ratios
    are simulated and deterministic, so the tolerance only absorbs
    intentional cost-model changes — a quick point that silently
    stops splitting fails this, not just the floor).

 7. Precision gate (micro_spgemm / micro_encode): every precision
    point, reference and measured, must hold its in-domain bitwise
    guarantee (serial == pooled for all datatypes; integer datatypes
    also == the refGemmQuant golden model, and the word encoder ==
    the scalar encode under the same QuantSpec). On micro_spgemm the
    int8 datapath must beat fp16 by `--precision-floor` on simulated
    kernel time at every memory-bound operating point (the narrow
    value lanes must actually shrink the modeled DRAM traffic); on
    micro_encode the int8 and int4 encoded footprints must be
    strictly smaller than fp16's. Simulated times and footprints are
    deterministic, so these thresholds only absorb intentional
    cost-model changes.

 8. SpMM gate (micro_spmm): every corpus point, reference and
    measured, must hold the full bitwise set (narrow == scalar
    reference == wide == csr, stable across worker counts); the
    reference sweep's corpus-median narrow-vs-wide ratio must stay
    >= `--spmm-median-win`; Auto format selection must stay within
    `--spmm-select-slack` of the better format everywhere; and the
    selected dual kernel must never lose to the cusparse-like
    baseline. All simulated, deterministic ratios.

The sanity gate's pooled-vs-word slack comparison is skipped when the
measured run reports `hardware_concurrency == 1`: on a single
hardware thread the pool cannot scale and its wall-clock is noise.

Exit code 0 = green, 1 = regression, 2 = usage/setup error.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Operating-point keys per bench: reference points are matched to
# measured points on these fields only (never on size/shape/machine).
BENCHES = {
    "micro_spgemm": {
        "binary": os.path.join("bench", "micro_spgemm"),
        "reference": "BENCH_spgemm.json",
        "keys": ("sparsity", "tile_k"),
        "precision": "gemm",
    },
    "micro_spconv": {
        "binary": os.path.join("bench", "micro_spconv"),
        "reference": "BENCH_spconv.json",
        "keys": ("method", "wsp", "asp", "stride", "clustered"),
    },
    "micro_encode": {
        "binary": os.path.join("bench", "micro_encode"),
        "reference": "BENCH_encode.json",
        "keys": ("kind", "sparsity", "stride"),
        "precision": "encode",
    },
    "micro_cluster": {
        "binary": os.path.join("bench", "micro_cluster"),
        "reference": "BENCH_cluster.json",
        "keys": ("devices", "policy"),
        "mode": "cluster",
    },
    "micro_serve": {
        "binary": os.path.join("bench", "micro_serve"),
        "reference": "BENCH_serve.json",
        "keys": ("devices", "policy", "load"),
        "mode": "serve",
    },
    "micro_hybrid": {
        "binary": os.path.join("bench", "micro_hybrid"),
        "reference": "BENCH_hybrid.json",
        "keys": ("mix", "b_sparsity", "b_kind"),
        "mode": "hybrid",
    },
    "micro_spmm": {
        "binary": os.path.join("bench", "micro_spmm"),
        "reference": "BENCH_spmm.json",
        "keys": ("matrix", "n"),
        "mode": "spmm",
        "corpus": True,
    },
}


def fail(msg):
    print(f"check_bench: FAIL: {msg}")
    return False


def point_key(point, keys):
    return tuple(point.get(k) for k in keys)


def point_label(point):
    fields = ("kind", "shape", "matrix", "m", "method", "sparsity",
              "wsp", "asp", "stride", "clustered", "tile_k",
              "devices", "policy", "load", "mix", "b_sparsity",
              "b_kind", "faults", "recovery")
    parts = [f"{k}={point[k]}" for k in fields if k in point]
    return "{" + ", ".join(parts) + "}"


def check_points(name, points, *, require_positive):
    ok = True
    for p in points:
        if not p.get("bitwise_equal", False):
            ok = fail(f"{name}: {point_label(p)} is not bitwise "
                      f"equal to the scalar reference")
        if require_positive:
            for field, value in p.items():
                if field.endswith("_ms") and not value > 0.0:
                    ok = fail(f"{name}: {point_label(p)} has "
                              f"non-positive timing {field}={value}")
    return ok


def run_quick(binary, timeout_s, extra=()):
    with tempfile.NamedTemporaryFile(suffix=".json",
                                     delete=False) as tmp:
        out_path = tmp.name
    try:
        proc = subprocess.run([binary, "--quick", "--out", out_path,
                               *extra],
                              capture_output=True, text=True,
                              timeout=timeout_s)
        if proc.returncode != 0:
            print(proc.stdout)
            print(proc.stderr, file=sys.stderr)
            return None
        with open(out_path) as f:
            return json.load(f)
    finally:
        os.unlink(out_path)


def makespan_ratio(points, devices):
    """rr-vs-cost simulated makespan ratio of one device set (the
    placement-quality figure; > 1 means the cost model wins)."""
    cost = rr = None
    for p in points:
        if p.get("devices") != devices:
            continue
        if p.get("policy") == "cost":
            cost = p.get("makespan_us", 0.0)
        elif p.get("policy") == "rr":
            rr = p.get("makespan_us", 0.0)
    if not cost or not rr:
        return None
    return rr / cost


def check_cluster(name, ref_points, meas_points, args):
    """Placement-quality gate: deterministic simulated makespans, so
    the measured ratios should track the reference exactly; the
    tolerance only absorbs intentional timing-model changes."""
    ok = True
    hetero = sorted({p["devices"] for p in meas_points
                     if "+" in p.get("devices", "")})
    if not hetero:
        return fail(f"{name}: no heterogeneous device mix measured")
    for devices in hetero:
        ratio = makespan_ratio(meas_points, devices)
        if ratio is None:
            ok = fail(f"{name}: {devices} lacks cost/rr points for "
                      f"the placement-quality gate")
            continue
        mix_ok = True
        if ratio < 1.0:
            mix_ok = fail(f"{name}: {devices} cost-model placement "
                          f"({ratio:.2f}x) lost to round-robin")
        ref_ratio = makespan_ratio(ref_points, devices)
        if ref_ratio is not None and \
                ratio < args.tolerance * ref_ratio:
            mix_ok = fail(f"{name}: {devices} placement quality "
                          f"{ratio:.2f}x regressed below "
                          f"{args.tolerance * ref_ratio:.2f}x "
                          f"(= {args.tolerance:.2f} x reference "
                          f"{ref_ratio:.2f}x)")
        if mix_ok:
            print(f"check_bench: {name}: {devices} placement "
                  f"quality {ratio:.2f}x (cost vs rr)")
        ok = mix_ok and ok
    return ok


def serve_ratio(points, devices, load, field, better="lower"):
    """deadline-vs-rr ratio of one serving metric on one (device set,
    load) pair, oriented so > 1 means the deadline policy wins."""
    deadline = rr = None
    for p in points:
        if p.get("devices") != devices or p.get("load") != load:
            continue
        if p.get("policy") == "deadline":
            deadline = p.get(field, 0.0)
        elif p.get("policy") == "rr":
            rr = p.get(field, 0.0)
    if not deadline or not rr:
        return None
    return rr / deadline if better == "lower" else deadline / rr

# Serving gate metrics: (json field, which direction the deadline
# policy must win, human label).
SERVE_METRICS = (
    ("p99_us", "lower", "p99 tail latency"),
    ("goodput_rpms", "higher", "goodput"),
)


def check_serve(name, ref_points, meas_points, args):
    """Tail-latency/goodput gate: on every heterogeneous device mix
    and load level, deadline-aware placement must beat round-robin on
    p99 and goodput (ratio >= 1), and each ratio must stay above
    `--tolerance` times the checked-in reference ratio. Serving
    metrics are simulated and deterministic, so the tolerance only
    absorbs intentional timing- or policy-model changes."""
    ok = True
    # The policy-comparison gate runs on healthy points only; fault
    # sweep points (faults != "") are gated by check_serve_faults.
    ref_points = [p for p in ref_points if not p.get("faults", "")]
    meas_points = [p for p in meas_points if not p.get("faults", "")]
    hetero = sorted({p["devices"] for p in meas_points
                     if "+" in p.get("devices", "")})
    if not hetero:
        return fail(f"{name}: no heterogeneous device mix measured")
    loads = sorted({p.get("load") for p in meas_points})
    for devices in hetero:
        for load in loads:
            for field, better, label in SERVE_METRICS:
                ratio = serve_ratio(meas_points, devices, load,
                                    field, better)
                if ratio is None:
                    ok = fail(f"{name}: {devices}@{load} lacks "
                              f"deadline/rr points for the {label} "
                              f"gate")
                    continue
                point_ok = True
                if ratio < 1.0:
                    point_ok = fail(
                        f"{name}: {devices}@{load} deadline policy "
                        f"({ratio:.2f}x) lost to round-robin on "
                        f"{label}")
                ref = serve_ratio(ref_points, devices, load, field,
                                  better)
                if ref is not None and \
                        ratio < args.tolerance * ref:
                    point_ok = fail(
                        f"{name}: {devices}@{load} {label} advantage "
                        f"{ratio:.2f}x regressed below "
                        f"{args.tolerance * ref:.2f}x (= "
                        f"{args.tolerance:.2f} x reference "
                        f"{ref:.2f}x)")
                if point_ok:
                    print(f"check_bench: {name}: {devices}@{load} "
                          f"{label} advantage {ratio:.2f}x "
                          f"(deadline vs rr)")
                ok = point_ok and ok
    return ok


def recovery_goodput_ratio(points):
    """failover-vs-no-recovery goodput ratio under the crash script
    (> 1 means recovery converts lost work back into goodput)."""
    recovered = baseline = None
    for p in points:
        if "crash" not in p.get("faults", "") or \
                "transient" in p.get("faults", ""):
            continue
        if p.get("recovery") == "failover":
            recovered = p.get("goodput_rpms", 0.0)
        elif p.get("recovery") == "none":
            baseline = p.get("goodput_rpms", 0.0)
    if not recovered or not baseline:
        return None
    return recovered / baseline


def check_serve_faults(name, ref_points, meas_points, args):
    """Fault-recovery gate: the fault sweep's deterministic recovery
    quality. Crash script: failover goodput >= the no-recovery
    baseline, within tolerance of the reference ratio. Transient-only
    with retry: zero lost requests, hard."""
    ok = True
    fault_meas = [p for p in meas_points if p.get("faults", "")]
    if not fault_meas:
        return fail(f"{name}: no fault sweep points measured")

    ratio = recovery_goodput_ratio(fault_meas)
    if ratio is None:
        ok = fail(f"{name}: fault sweep lacks the failover/"
                  f"no-recovery crash pair")
    else:
        if ratio < 1.0:
            ok = fail(f"{name}: crash-script recovery goodput "
                      f"({ratio:.2f}x) fell below the no-recovery "
                      f"baseline")
        ref = recovery_goodput_ratio(
            [p for p in ref_points if p.get("faults", "")])
        if ref is not None and ratio < args.tolerance * ref:
            ok = fail(f"{name}: recovery goodput advantage "
                      f"{ratio:.2f}x regressed below "
                      f"{args.tolerance * ref:.2f}x (= "
                      f"{args.tolerance:.2f} x reference {ref:.2f}x)")
        if ok:
            print(f"check_bench: {name}: crash-script recovery "
                  f"goodput {ratio:.2f}x vs no-recovery baseline")

    transient_retry = [
        p for p in fault_meas
        if "transient" in p.get("faults", "")
        and "crash" not in p.get("faults", "")
        and "retry" in p.get("recovery", "")]
    if not transient_retry:
        ok = fail(f"{name}: no transient-only retry point measured")
    for p in transient_retry:
        if p.get("lost", -1) != 0:
            ok = fail(f"{name}: {point_label(p)} lost "
                      f"{p.get('lost')} requests under transient-only "
                      f"faults with retry (must be 0)")
        elif p.get("retries", 0) <= 0:
            ok = fail(f"{name}: {point_label(p)} recorded no retries "
                      f"— the transient fault axis went missing")
        else:
            print(f"check_bench: {name}: {point_label(p)} retried "
                  f"{p.get('retries')} transient failures, lost 0")
    for p in fault_meas:
        avail = p.get("availability", -1.0)
        if not 0.0 <= avail <= 1.0:
            ok = fail(f"{name}: {point_label(p)} availability "
                      f"{avail} outside [0, 1]")
    return ok


def check_hybrid(name, ref_points, meas_points, args):
    """Hybrid-dispatch gate: the intra-request split must never lose
    to the best single backend, must win materially at a
    mixed-density point, and measured ratios must track their
    key-matched reference. ratio_vs_best compares simulated kernel
    times, which are deterministic, so `--hybrid-tolerance` only
    absorbs intentional cost-model changes."""
    ok = True
    for side, pts in (("reference", ref_points),
                      ("measured", meas_points)):
        for p in pts:
            ratio = p.get("ratio_vs_best", 0.0)
            if ratio < args.hybrid_floor:
                ok = fail(f"{name} ({side}): {point_label(p)} hybrid "
                          f"({ratio:.4f}x) lost to the best single "
                          f"backend (floor {args.hybrid_floor:.4f}x)")
        mixed = [p.get("ratio_vs_best", 0.0) for p in pts
                 if 0.0 < p.get("mix", 0.0) < 1.0]
        best = max(mixed, default=0.0)
        if best < args.hybrid_win:
            ok = fail(f"{name} ({side}): best mixed-density win "
                      f"{best:.2f}x fell below the material-win "
                      f"threshold {args.hybrid_win:.2f}x — the "
                      f"partition no longer pays off anywhere")
        else:
            print(f"check_bench: {name} ({side}): best mixed-density "
                  f"win {best:.2f}x over the best single backend")

    keys = ("mix", "b_sparsity", "b_kind")
    for p in meas_points:
        ratio = p.get("ratio_vs_best", 0.0)
        matches = [r.get("ratio_vs_best", 0.0) for r in ref_points
                   if point_key(r, keys) == point_key(p, keys)]
        if not matches:
            print(f"check_bench: note: {name} {point_label(p)} has "
                  f"no reference point with the same operating key; "
                  f"floor only")
            continue
        threshold = args.hybrid_tolerance * min(matches)
        if ratio < threshold:
            ok = fail(f"{name}: {point_label(p)} hybrid advantage "
                      f"{ratio:.4f}x regressed below "
                      f"{threshold:.4f}x (= "
                      f"{args.hybrid_tolerance:.2f} x reference "
                      f"{min(matches):.4f}x)")
    return ok


def check_spmm(name, ref_points, meas_points, args):
    """SpMM gate (micro_spmm): the narrow-tile format's real-matrix
    claims. Hard, both sides: every point must also be bitwise stable
    across worker counts (workers_bitwise_equal; plain bitwise_equal
    — narrow == scalar reference == wide == csr — is already gated by
    check_points). Reference sweep: the corpus-median narrow-vs-wide
    ratio must stay >= `--spmm-median-win` (the tentpole's headline
    claim at 99%+ sparsity). Every point, both sides: Auto format
    selection must stay within `--spmm-select-slack` of the better
    format, and the selected dual kernel must never lose to the
    cusparse-like baseline. All ratios compare simulated kernel
    times, which are deterministic, so `--spmm-tolerance` on the
    measured-vs-reference ratio only absorbs intentional cost-model
    changes."""
    ok = True
    for side, pts in (("reference", ref_points),
                      ("measured", meas_points)):
        for p in pts:
            label = point_label(p)
            if not p.get("workers_bitwise_equal", False):
                ok = fail(f"{name} ({side}): {label} narrow kernel "
                          f"is not bitwise stable across worker "
                          f"counts")
            if p.get("cusparse_vs_selected", 0.0) < 1.0:
                ok = fail(f"{name} ({side}): {label} selected dual "
                          f"kernel lost to the cusparse-like "
                          f"baseline "
                          f"({p.get('cusparse_vs_selected'):.2f}x)")
            best = min(p.get("narrow_us", 0.0), p.get("wide_us", 0.0))
            sel = p.get("selected_us", 0.0)
            if not best > 0.0 or not sel > 0.0:
                ok = fail(f"{name} ({side}): {label} has "
                          f"non-positive simulated times")
            elif sel > args.spmm_select_slack * best:
                ok = fail(f"{name} ({side}): {label} Auto selection "
                          f"picked a format {sel / best:.3f}x the "
                          f"best (slack "
                          f"{args.spmm_select_slack:.2f}x)")

    ratios = sorted(p.get("narrow_vs_wide", 0.0) for p in ref_points)
    if not ratios:
        ok = fail(f"{name}: reference sweep has no points")
    else:
        mid = len(ratios) // 2
        median = ratios[mid] if len(ratios) % 2 else \
            0.5 * (ratios[mid - 1] + ratios[mid])
        if median < args.spmm_median_win:
            ok = fail(f"{name}: corpus-median narrow-vs-wide ratio "
                      f"{median:.2f}x fell below the "
                      f"{args.spmm_median_win:.2f}x headline floor")
        else:
            print(f"check_bench: {name}: corpus-median narrow-vs-"
                  f"wide {median:.2f}x over {len(ratios)} matrices")

    keys = ("matrix", "n")
    for p in meas_points:
        ratio = p.get("narrow_vs_wide", 0.0)
        matches = [r.get("narrow_vs_wide", 0.0) for r in ref_points
                   if point_key(r, keys) == point_key(p, keys)]
        if not matches:
            print(f"check_bench: note: {name} {point_label(p)} has "
                  f"no reference point with the same operating key; "
                  f"selection/baseline gates only")
            continue
        threshold = args.spmm_tolerance * min(matches)
        if ratio < threshold:
            ok = fail(f"{name}: {point_label(p)} narrow-vs-wide "
                      f"{ratio:.4f}x regressed below "
                      f"{threshold:.4f}x (= "
                      f"{args.spmm_tolerance:.2f} x reference "
                      f"{min(matches):.4f}x)")
    return ok


def check_precision(name, mode, ref_points, meas_points, args):
    """Precision-axis gate (see module docstring, gate 7)."""
    ok = True
    for side, pts in (("reference", ref_points),
                      ("measured", meas_points)):
        if not pts:
            ok = fail(f"{name} ({side}): no precision points — the "
                      f"datatype axis went missing")
            continue
        by_sparsity = {}
        for p in pts:
            if not p.get("bitwise_equal", False):
                ok = fail(f"{name} ({side}): precision point "
                          f"dtype={p.get('dtype')} "
                          f"sparsity={p.get('sparsity')} broke its "
                          f"in-domain bitwise guarantee")
            by_sparsity.setdefault(p.get("sparsity"),
                                   {})[p.get("dtype")] = p

        if mode == "gemm":
            gated = False
            for sparsity, by_dtype in sorted(by_sparsity.items()):
                f16 = by_dtype.get("fp16")
                i8 = by_dtype.get("int8")
                if not f16 or not i8 or \
                        not f16.get("memory_bound", False):
                    continue
                gated = True
                ratio = f16.get("modeled_us", 0.0) / \
                    max(i8.get("modeled_us", 0.0), 1e-9)
                if ratio < args.precision_floor:
                    ok = fail(
                        f"{name} ({side}): int8 advantage over fp16 "
                        f"at sparsity={sparsity} is {ratio:.2f}x, "
                        f"below the {args.precision_floor:.2f}x "
                        f"floor on simulated kernel time")
                else:
                    print(f"check_bench: {name} ({side}): int8 "
                          f"{ratio:.2f}x faster than fp16 at "
                          f"sparsity={sparsity} (simulated, "
                          f"memory-bound)")
        elif mode == "encode":
            for sparsity, by_dtype in sorted(by_sparsity.items()):
                f16 = by_dtype.get("fp16")
                for narrow in ("int8", "int4"):
                    p = by_dtype.get(narrow)
                    if not f16 or not p:
                        continue
                    if not p.get("encoded_mb", 0.0) < \
                            f16.get("encoded_mb", 0.0):
                        ok = fail(
                            f"{name} ({side}): {narrow} encoded "
                            f"footprint "
                            f"({p.get('encoded_mb')} MB) is not "
                            f"smaller than fp16's "
                            f"({f16.get('encoded_mb')} MB) at "
                            f"sparsity={sparsity}")

        if mode == "gemm" and not gated:
            ok = fail(f"{name} ({side}): no memory-bound fp16/int8 "
                      f"pair to gate the precision advantage on")
    return ok


def check_bench(name, spec, args):
    ref_path = os.path.join(args.repo_root, spec["reference"])
    binary = os.path.join(args.build_dir, spec["binary"])
    if not os.path.exists(ref_path):
        print(f"check_bench: missing reference {ref_path}")
        return False
    if not os.path.exists(binary):
        print(f"check_bench: missing binary {binary} (build first)")
        return False

    with open(ref_path) as f:
        reference = json.load(f)
    ref_points = reference.get("points", [])
    ok = check_points(f"{name} (reference)", ref_points,
                      require_positive=True)

    extra = ()
    if spec.get("corpus"):
        extra = ("--corpus", os.path.join(args.repo_root, "corpus"))
    print(f"check_bench: running {binary} --quick ...")
    measured = run_quick(binary, args.timeout, extra)
    if measured is None:
        return fail(f"{name}: quick run failed")
    measured_config = measured.get("config", {})
    meas_points = measured.get("points", [])
    if not meas_points:
        return fail(f"{name}: quick run produced no points")
    ok = check_points(f"{name} (measured)", meas_points,
                      require_positive=True) and ok

    if spec.get("mode") == "cluster":
        ok = check_cluster(name, ref_points, meas_points, args) and ok
        if ok:
            print(f"check_bench: {name}: "
                  f"{len(meas_points)} quick points green")
        return ok

    if spec.get("mode") == "serve":
        ok = check_serve(name, ref_points, meas_points, args) and ok
        ok = check_serve_faults(name, ref_points, meas_points,
                                args) and ok
        if ok:
            print(f"check_bench: {name}: "
                  f"{len(meas_points)} quick points green")
        return ok

    if spec.get("mode") == "hybrid":
        ok = check_hybrid(name, ref_points, meas_points, args) and ok
        if ok:
            print(f"check_bench: {name}: "
                  f"{len(meas_points)} quick points green")
        return ok

    if spec.get("mode") == "spmm":
        ok = check_spmm(name, ref_points, meas_points, args) and ok
        if ok:
            print(f"check_bench: {name}: "
                  f"{len(meas_points)} quick points green")
        return ok

    keys = spec["keys"]
    for p in meas_points:
        speedup = p.get("speedup_word_vs_scalar", 0.0)
        label = point_label(p)

        if speedup < args.min_speedup:
            ok = fail(f"{name}: {label} word path speedup {speedup:.2f}x "
                      f"fell below the absolute floor "
                      f"{args.min_speedup:.2f}x")

        matches = [r.get("speedup_word_vs_scalar", 0.0)
                   for r in ref_points
                   if point_key(r, keys) == point_key(p, keys)]
        if not matches:
            print(f"check_bench: note: {name} {label} has no "
                  f"reference point with the same operating key; "
                  f"absolute floor only")
            continue
        threshold = args.tolerance * min(matches)
        if speedup < threshold:
            ok = fail(
                f"{name}: {label} speedup {speedup:.2f}x regressed "
                f"below {threshold:.2f}x (= {args.tolerance:.2f} x "
                f"reference {min(matches):.2f}x)")

        # Single-rep timings are one raw sample each; a late pool
        # wake-up can triple a sub-millisecond pooled point, so the
        # slack check only applies to best-of-N measurements. On a
        # single hardware thread the pool cannot scale at all (every
        # worker timeshares one core), so the comparison is skipped
        # there outright.
        reps = measured_config.get("reps", 1)
        cores = measured_config.get("hardware_concurrency", 0)
        par = p.get("parallel_ms", 0.0)
        word = p.get("word_ms", 0.0)
        if reps >= 2 and cores != 1 and par > 0 and word > 0 and \
                par > args.parallel_slack * word:
            ok = fail(f"{name}: {label} pooled path ({par:.3f} ms) "
                      f"is worse than {args.parallel_slack:.1f}x the "
                      f"single-thread word path ({word:.3f} ms)")

    if spec.get("precision"):
        ok = check_precision(name, spec["precision"],
                             reference.get("precision_points", []),
                             measured.get("precision_points", []),
                             args) and ok

    if ok:
        print(f"check_bench: {name}: "
              f"{len(meas_points)} quick points green")
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory (bench binaries)")
    parser.add_argument("--repo-root", default=".",
                        help="directory of the BENCH_*.json references")
    parser.add_argument("--tolerance", type=float, default=0.40,
                        help="measured speedup must be >= tolerance * "
                             "worst matching reference speedup")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="absolute speedup floor: the word path "
                             "may never be slower than scalar")
    parser.add_argument("--parallel-slack", type=float, default=2.0,
                        help="pooled path may be at most this factor "
                             "slower than single-thread (1-core CI)")
    parser.add_argument("--hybrid-floor", type=float, default=0.999,
                        help="hybrid dispatch may never lose to the "
                             "best single backend (simulated time)")
    parser.add_argument("--hybrid-win", type=float, default=1.15,
                        help="required hybrid advantage at the best "
                             "mixed-density point, reference and "
                             "measured")
    parser.add_argument("--hybrid-tolerance", type=float,
                        default=0.95,
                        help="measured hybrid ratios must stay "
                             "within this factor of their "
                             "key-matched reference (deterministic "
                             "simulated ratios)")
    parser.add_argument("--spmm-median-win", type=float, default=2.0,
                        help="required corpus-median narrow-vs-wide "
                             "advantage on the reference SpMM sweep")
    parser.add_argument("--spmm-select-slack", type=float,
                        default=1.05,
                        help="Auto format selection may be at most "
                             "this factor worse than the better "
                             "format on any corpus matrix")
    parser.add_argument("--spmm-tolerance", type=float, default=0.95,
                        help="measured narrow-vs-wide ratios must "
                             "stay within this factor of their "
                             "key-matched reference (deterministic "
                             "simulated ratios)")
    parser.add_argument("--precision-floor", type=float, default=1.3,
                        help="required int8-over-fp16 advantage on "
                             "simulated kernel time at memory-bound "
                             "precision points")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-bench quick-run timeout in seconds")
    args = parser.parse_args()

    ok = True
    for name, spec in BENCHES.items():
        ok = check_bench(name, spec, args) and ok
    if not ok:
        sys.exit(1)
    print("check_bench: all benches green")


if __name__ == "__main__":
    main()
