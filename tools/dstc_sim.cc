/**
 * @file
 * dstc_sim — command-line front end to the simulator, for exploring
 * operating points without writing code.
 *
 * Usage:
 *   dstc_sim gemm M N K [--a-sparsity S] [--b-sparsity S]
 *            [--cluster C] [--method dual|dense|zhu|ampere|cusparse]
 *   dstc_sim conv --in-c C --hw H --out-c N [--kernel K] [--stride S]
 *            [--pad P] [--wsp S] [--asp S]
 *            [--method dual|dense-implicit|dense-explicit|single-...]
 *   dstc_sim model vgg16|resnet18|maskrcnn|bert|rnn [--method ...]
 *   dstc_sim overhead
 *
 * All commands run on the V100 machine model; pass --a100 to switch.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/engine.h"
#include "hwmodel/energy_model.h"
#include "model/runner.h"

using namespace dstc;

namespace {

struct Args
{
    std::vector<std::string> positional;
    std::vector<std::pair<std::string, std::string>> flags;

    bool
    hasFlag(const std::string &name) const
    {
        for (const auto &[k, v] : flags)
            if (k == name)
                return true;
        return false;
    }

    std::string
    flag(const std::string &name, const std::string &fallback) const
    {
        for (const auto &[k, v] : flags)
            if (k == name)
                return v;
        return fallback;
    }

    double
    flagD(const std::string &name, double fallback) const
    {
        for (const auto &[k, v] : flags)
            if (k == name)
                return std::atof(v.c_str());
        return fallback;
    }

    int
    flagI(const std::string &name, int fallback) const
    {
        for (const auto &[k, v] : flags)
            if (k == name)
                return std::atoi(v.c_str());
        return fallback;
    }
};

Args
parseArgs(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        std::string token = argv[i];
        if (token.rfind("--", 0) == 0) {
            std::string name = token.substr(2);
            std::string value = "1";
            if (i + 1 < argc && argv[i + 1][0] != '-')
                value = argv[++i];
            args.flags.emplace_back(name, value);
        } else {
            args.positional.push_back(token);
        }
    }
    return args;
}

void
printStats(const KernelStats &stats, const GpuConfig &cfg)
{
    std::printf("kernel           : %s\n", stats.name.c_str());
    std::printf("time             : %.2f us (%s bound)\n",
                stats.timeUs(),
                stats.bound == Bound::Compute ? "compute" : "memory");
    std::printf("compute / memory : %.2f / %.2f us\n", stats.compute_us,
                stats.memory_us);
    std::printf("DRAM traffic     : %.2f MB\n", stats.dram_bytes / 1e6);
    if (stats.mix.ohmma_issued + stats.mix.ohmma_skipped > 0) {
        std::printf("OHMMA            : %lld issued, %lld skipped\n",
                    static_cast<long long>(stats.mix.ohmma_issued),
                    static_cast<long long>(stats.mix.ohmma_skipped));
        std::printf("warp tiles       : %lld run, %lld skipped\n",
                    static_cast<long long>(stats.warp_tiles),
                    static_cast<long long>(stats.warp_tiles_skipped));
    }
    EnergyReport energy =
        estimateEnergy(stats, EnergyParams::v100_12nm(), cfg);
    std::printf("energy           : %.1f uJ\n", energy.totalUj());
}

int
runGemm(const Args &args, const DstcEngine &engine)
{
    if (args.positional.size() < 4) {
        std::fprintf(stderr, "usage: dstc_sim gemm M N K [flags]\n");
        return 2;
    }
    const int64_t m = std::atoll(args.positional[1].c_str());
    const int64_t n = std::atoll(args.positional[2].c_str());
    const int64_t k = std::atoll(args.positional[3].c_str());
    if (m <= 0 || n <= 0 || k <= 0) {
        std::fprintf(stderr, "error: dimensions must be positive\n");
        return 2;
    }
    const double sa = args.flagD("a-sparsity", 0.0);
    const double sb = args.flagD("b-sparsity", 0.0);
    const double cluster = args.flagD("cluster", 1.0);
    const std::string method = args.flag("method", "dual");

    KernelStats stats;
    if (method == "dual") {
        Rng rng(static_cast<uint64_t>(args.flagI("seed", 1)));
        SparsityProfile pa = SparsityProfile::randomA(
            m, k, 32, 1.0 - sa, sa > 0 ? cluster : 1.0, rng);
        SparsityProfile pb = SparsityProfile::randomA(
            n, k, 32, 1.0 - sb, sb > 0 ? cluster : 1.0, rng);
        stats = engine.spgemmTime(pa, pb);
    } else if (method == "dense") {
        stats = engine.denseGemmTime(m, n, k);
    } else if (method == "zhu") {
        stats = engine.zhuGemmTime(m, n, k, sb);
    } else if (method == "ampere") {
        stats = engine.ampereGemmTime(m, n, k, sb);
    } else if (method == "cusparse") {
        stats = engine.cusparseTime(m, n, k, 1.0 - sa, 1.0 - sb);
    } else {
        std::fprintf(stderr, "error: unknown method '%s'\n",
                     method.c_str());
        return 2;
    }
    std::printf("GEMM %lld x %lld x %lld, A sparsity %.3f, B sparsity "
                "%.3f (%s)\n",
                static_cast<long long>(m), static_cast<long long>(n),
                static_cast<long long>(k), sa, sb, method.c_str());
    printStats(stats, engine.config());
    return 0;
}

int
runConv(const Args &args, const DstcEngine &engine)
{
    ConvShape shape;
    shape.batch = args.flagI("batch", 1);
    shape.in_c = args.flagI("in-c", 0);
    shape.in_h = shape.in_w = args.flagI("hw", 0);
    shape.out_c = args.flagI("out-c", 0);
    shape.kernel = args.flagI("kernel", 3);
    shape.stride = args.flagI("stride", 1);
    shape.pad = args.flagI("pad", 1);
    if (shape.in_c <= 0 || shape.in_h <= 0 || shape.out_c <= 0) {
        std::fprintf(stderr, "usage: dstc_sim conv --in-c C --hw H "
                             "--out-c N [flags]\n");
        return 2;
    }
    if (shape.outH() <= 0) {
        std::fprintf(stderr,
                     "error: convolution output collapses to zero\n");
        return 2;
    }

    const std::string method_name = args.flag("method", "dual");
    ConvMethod method;
    if (method_name == "dual")
        method = ConvMethod::DualSparseImplicit;
    else if (method_name == "dense-implicit")
        method = ConvMethod::DenseImplicit;
    else if (method_name == "dense-explicit")
        method = ConvMethod::DenseExplicit;
    else if (method_name == "single-implicit")
        method = ConvMethod::SingleSparseImplicit;
    else if (method_name == "single-explicit")
        method = ConvMethod::SingleSparseExplicit;
    else {
        std::fprintf(stderr, "error: unknown method '%s'\n",
                     method_name.c_str());
        return 2;
    }

    KernelStats stats = engine.convTime(
        shape, method, args.flagD("wsp", 0.0), args.flagD("asp", 0.0),
        static_cast<uint64_t>(args.flagI("seed", 1)),
        args.flagD("cluster", 4.0), args.flagD("act-cluster", 2.0));
    std::printf("CONV %s (%s)\n", shape.str().c_str(),
                convMethodName(method));
    printStats(stats, engine.config());
    return 0;
}

int
runModel(const Args &args, const DstcEngine &engine)
{
    if (args.positional.size() < 2) {
        std::fprintf(stderr, "usage: dstc_sim model <name> [flags]\n");
        return 2;
    }
    const std::string &name = args.positional[1];
    DnnModel model;
    if (name == "vgg16")
        model = makeVgg16();
    else if (name == "resnet18")
        model = makeResnet18();
    else if (name == "maskrcnn")
        model = makeMaskRcnn();
    else if (name == "bert")
        model = makeBertBase();
    else if (name == "rnn")
        model = makeRnnLM();
    else {
        std::fprintf(stderr, "error: unknown model '%s'\n",
                     name.c_str());
        return 2;
    }

    const std::string method_name = args.flag("method", "dual");
    ModelMethod method = ModelMethod::DualSparseImplicit;
    if (method_name == "dense")
        method = ModelMethod::DenseImplicit;
    else if (method_name == "single")
        method = ModelMethod::SingleSparseImplicit;
    else if (method_name != "dual") {
        std::fprintf(stderr, "error: unknown method '%s'\n",
                     method_name.c_str());
        return 2;
    }

    ModelRunner runner(engine);
    ModelRunResult result = runner.run(model, method);
    ModelRunResult dense =
        runner.run(model, ModelMethod::DenseImplicit);

    TextTable table;
    table.setHeader({"layer", "time (us)", "vs dense implicit"});
    for (size_t i = 0; i < result.layers.size(); ++i) {
        table.addRow({result.layers[i].name,
                      fmtDouble(result.layers[i].stats.timeUs(), 2),
                      fmtSpeedup(dense.layers[i].stats.timeUs() /
                                 result.layers[i].stats.timeUs())});
    }
    table.addRow({"FULL MODEL", fmtDouble(result.totalTimeUs(), 2),
                  fmtSpeedup(dense.totalTimeUs() /
                             result.totalTimeUs())});
    std::printf("%s under %s:\n", model.name.c_str(),
                modelMethodName(method));
    table.print();
    return 0;
}

int
runOverhead(const DstcEngine &engine)
{
    OverheadReport report = engine.hardwareOverhead();
    TextTable table;
    table.setHeader({"module", "area (mm^2)", "power (W)"});
    for (const auto &component : report.components)
        table.addRow({component.name, fmtDouble(component.area_mm2, 3),
                      fmtDouble(component.power_w, 2)});
    table.addRow({"total", fmtDouble(report.totalAreaMm2(), 3),
                  fmtDouble(report.totalPowerW(), 2)});
    table.print();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parseArgs(argc, argv);
    if (args.positional.empty()) {
        std::fprintf(stderr,
                     "usage: dstc_sim <gemm|conv|model|overhead> "
                     "[args] [--a100]\n");
        return 2;
    }
    DstcEngine engine(args.hasFlag("a100") ? GpuConfig::a100Like()
                                           : GpuConfig::v100());

    const std::string &command = args.positional[0];
    if (command == "gemm")
        return runGemm(args, engine);
    if (command == "conv")
        return runConv(args, engine);
    if (command == "model")
        return runModel(args, engine);
    if (command == "overhead")
        return runOverhead(engine);
    std::fprintf(stderr, "error: unknown command '%s'\n",
                 command.c_str());
    return 2;
}
