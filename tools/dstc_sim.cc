/**
 * @file
 * dstc_sim — command-line front end to the simulator, for exploring
 * operating points without writing code. All execution goes through
 * the Session / KernelRegistry plan-execute API.
 *
 * Usage:
 *   dstc_sim gemm M N K [--a-sparsity S] [--b-sparsity S]
 *            [--cluster C] [--seed N] [--hybrid-threshold T]
 *            [--dtype fp32|fp16|bf16|int8|int4]
 *            [--method auto|dual|dense|zhu|ampere|cusparse|hybrid]
 *   dstc_sim spmm <file.mtx> [N] | spmm M N K [--a-sparsity S]
 *            [--format auto|narrow|wide] [--dtype ...] [--seed N]
 *            [--method auto|dual|dense|cusparse|hybrid]
 *   dstc_sim conv --in-c C --hw H --out-c N [--kernel K] [--stride S]
 *            [--pad P] [--wsp S] [--asp S] [--batch B] [--seed N]
 *            [--cluster C] [--act-cluster C] [--explicit]
 *            [--method auto|dual|dense|zhu]
 *   dstc_sim model vgg16|resnet18|maskrcnn|bert|rnn
 *            [--method auto|dual|dense|single] [--seed N] [--batched]
 *            [--dtype fp32|fp16|bf16|int8|int4]
 *   dstc_sim cluster vgg16|resnet18|maskrcnn|bert|rnn
 *            [--devices v100,a100,future] [--policy cost|rr|shard]
 *            [--method auto|dual|dense|single] [--replicate N]
 *            [--seed N]
 *   dstc_sim serve vgg16|resnet18|maskrcnn|bert|rnn|mix
 *            [--devices v100,a100,future]
 *            [--policy deadline|cost|rr] [--admission reject|shed]
 *            [--pattern poisson|bursty] [--rate RPMS]
 *            [--duration MS] [--depth N] [--microbatch N]
 *            [--method auto|dual|dense|single] [--seed N]
 *            [--faults SPEC] [--fault-seed N] [--retry]
 *            [--retry-budget N] [--backoff US] [--hedge]
 *            [--no-failover] [--no-degrade]
 *
 * Fault specs are ';'-separated events (see serve/faults.h):
 *   crash@<t_us>:d<idx>             crash-stop a device at t
 *   slow@<t_us>+<dur_us>x<f>:d<idx> slowdown window, factor f >= 1
 *   transient:p<prob>               per-attempt failure probability
 *   randcrash:<n>                   n seeded random crashes
 *   dstc_sim backends [M N K] [--a-sparsity S] [--b-sparsity S]
 *            [--cluster C] [--seed N] [--hybrid-threshold T]
 *   dstc_sim backends --mtx <file.mtx> [--n N]
 *   dstc_sim overhead [--dtype fp32|fp16|bf16|int8|int4]
 *
 * All commands run on the V100 machine model; pass --a100 to switch
 * (the cluster command instead takes its comma-separated --devices
 * list). Unknown commands, flags or flag values are rejected with an
 * error (exit code 2) instead of silently falling back to defaults.
 */
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "common/cli_flags.h"
#include "common/table.h"
#include "core/cluster.h"
#include "core/gemm_operands.h"
#include "core/hybrid.h"
#include "core/session.h"
#include "gemm/spmm_device.h"
#include "hwmodel/area_power.h"
#include "hwmodel/energy_model.h"
#include "model/runner.h"
#include "serve/serving.h"
#include "sparse/mtx_io.h"
#include "sparse/narrow_tile.h"

using namespace dstc;

namespace {

/** Flags valid for every command (the machine-model switch). */
const std::set<std::string> kGlobalFlags = {"a100"};

/** Parse --method against the subset a command supports. */
bool
parseMethodFlag(const CliArgs &args, const std::string &fallback,
                const std::set<std::string> &allowed, Method *out)
{
    const std::string token = args.flag("method", fallback);
    Method method;
    if (!parseMethod(token, &method) || !allowed.count(token)) {
        std::string valid;
        for (const auto &name : allowed)
            valid += (valid.empty() ? "" : "|") + name;
        std::fprintf(stderr,
                     "error: unknown method '%s' (valid: %s)\n",
                     token.c_str(), valid.c_str());
        return false;
    }
    *out = method;
    return true;
}

/** Parse the --dtype flag (defaulting to the FP16 datapath). */
bool
parseDataTypeFlag(const CliArgs &args, DataType *out)
{
    const std::string token = args.flag("dtype", "fp16");
    if (!parseDataType(token, out)) {
        std::fprintf(stderr,
                     "error: unknown dtype '%s' (valid: "
                     "fp32|fp16|bf16|int8|int4)\n",
                     token.c_str());
        return false;
    }
    return true;
}

void
printReport(const KernelReport &report, const GpuConfig &cfg,
            DataType dtype = DataType::Fp16)
{
    const KernelStats &stats = report.stats;
    std::printf("backend          : %s (%s)\n", report.backend.c_str(),
                methodName(report.method));
    std::printf("kernel           : %s\n", stats.name.c_str());
    std::printf("time             : %.2f us (%s bound)\n",
                stats.timeUs(),
                stats.bound == Bound::Compute ? "compute" : "memory");
    std::printf("compute / memory : %.2f / %.2f us\n", stats.compute_us,
                stats.memory_us);
    std::printf("DRAM traffic     : %.2f MB\n", stats.dram_bytes / 1e6);
    if (stats.mix.ohmma_issued + stats.mix.ohmma_skipped > 0) {
        std::printf("OHMMA            : %lld issued, %lld skipped\n",
                    static_cast<long long>(stats.mix.ohmma_issued),
                    static_cast<long long>(stats.mix.ohmma_skipped));
        std::printf("warp tiles       : %lld run, %lld skipped\n",
                    static_cast<long long>(stats.warp_tiles),
                    static_cast<long long>(stats.warp_tiles_skipped));
    }
    EnergyReport energy =
        estimateEnergy(stats, EnergyParams::v100_12nm(), cfg, dtype);
    std::printf("energy           : %.1f uJ\n", energy.totalUj());
}

int
runGemm(const CliArgs &args, Session &session)
{
    if (!args.checkPositionals("gemm", 4))
        return 2;
    if (!args.validateFlags("gemm",
                         {"a-sparsity", "b-sparsity", "cluster",
                          "method", "seed", "hybrid-threshold",
                          "dtype"},
                         {"a-sparsity", "b-sparsity", "cluster",
                          "hybrid-threshold"},
                         {}, {"seed"}, kGlobalFlags))
        return 2;
    if (args.positional.size() < 4) {
        std::fprintf(stderr, "usage: dstc_sim gemm M N K [flags]\n");
        return 2;
    }
    int64_t dims[3];
    for (int i = 0; i < 3; ++i) {
        const std::string &token = args.positional[i + 1];
        char *end = nullptr;
        errno = 0;
        dims[i] = std::strtoll(token.c_str(), &end, 10);
        if (token.empty() || end != token.c_str() + token.size() ||
            errno == ERANGE || dims[i] <= 0) {
            std::fprintf(stderr,
                         "error: dimension '%s' must be a positive "
                         "integer\n",
                         token.c_str());
            return 2;
        }
    }
    const int64_t m = dims[0], n = dims[1], k = dims[2];
    const double sa = args.flagD("a-sparsity", 0.0);
    const double sb = args.flagD("b-sparsity", 0.0);
    if (!checkSparsityFlag("a-sparsity", sa) ||
        !checkSparsityFlag("b-sparsity", sb))
        return 2;
    const double cluster = args.flagD("cluster", 1.0);
    if (!checkClusterFlag("cluster", cluster))
        return 2;

    Method method;
    if (!parseMethodFlag(args, "dual",
                         {"auto", "dual", "dense", "zhu", "ampere",
                          "cusparse", "hybrid"},
                         &method))
        return 2;
    DataType dtype;
    if (!parseDataTypeFlag(args, &dtype))
        return 2;
    if (method == Method::Hybrid && dataTypeIsInteger(dtype)) {
        std::fprintf(stderr,
                     "error: the hybrid composer has no integer "
                     "datapath (per-class quantization scales would "
                     "disagree); use --method dual\n");
        return 2;
    }

    KernelRequest req =
        KernelRequest::gemm(m, n, k, sa, sb)
            .withMethod(method)
            .withDataType(dtype)
            .withClusters(sa > 0 ? cluster : 1.0,
                          sb > 0 ? cluster : 1.0)
            .withSeed(args.flagU64("seed", 1))
            .withHybridThreshold(args.flagD("hybrid-threshold", -1.0));

    KernelReport report = session.run(req);
    std::printf("GEMM %lld x %lld x %lld, A sparsity %.3f, B sparsity "
                "%.3f (%s, %s)\n",
                static_cast<long long>(m), static_cast<long long>(n),
                static_cast<long long>(k), sa, sb,
                methodToken(req.method),
                dataTypeToken(req.dataType()));
    printReport(report, session.config(), req.dataType());
    return 0;
}

/** Parse one positive-integer positional ("M", "N", ...). */
bool
parseDimArg(const std::string &token, int64_t *out)
{
    char *end = nullptr;
    errno = 0;
    *out = std::strtoll(token.c_str(), &end, 10);
    return !token.empty() && end == token.c_str() + token.size() &&
           errno != ERANGE && *out > 0;
}

int
runSpmm(const CliArgs &args, Session &session)
{
    if (!args.checkPositionals("spmm", 4))
        return 2;
    if (!args.validateFlags("spmm",
                         {"a-sparsity", "cluster", "method", "format",
                          "seed", "dtype", "hybrid-threshold"},
                         {"a-sparsity", "cluster", "hybrid-threshold"},
                         {}, {"seed"}, kGlobalFlags))
        return 2;
    if (args.positional.size() < 2) {
        std::fprintf(stderr,
                     "usage: dstc_sim spmm <file.mtx> [N] [flags]\n"
                     "       dstc_sim spmm M N K --a-sparsity S "
                     "[flags]\n");
        return 2;
    }

    Method method;
    if (!parseMethodFlag(args, "dual",
                         {"auto", "dual", "dense", "cusparse",
                          "hybrid"},
                         &method))
        return 2;
    SpmmFormat format;
    if (!parseSpmmFormat(args.flag("format", "auto"), &format)) {
        std::fprintf(stderr,
                     "error: unknown format '%s' (valid: "
                     "auto|narrow|wide)\n",
                     args.flag("format", "auto").c_str());
        return 2;
    }
    DataType dtype;
    if (!parseDataTypeFlag(args, &dtype))
        return 2;
    if (method == Method::Hybrid && dataTypeIsInteger(dtype)) {
        std::fprintf(stderr,
                     "error: the hybrid composer has no integer "
                     "datapath (per-class quantization scales would "
                     "disagree); use --method dual\n");
        return 2;
    }
    const uint64_t seed = args.flagU64("seed", 1);

    // `spmm M N K --a-sparsity S` is the synthetic flavor; anything
    // that does not parse as a dimension is a .mtx path.
    int64_t first_dim = 0;
    const bool synthetic = parseDimArg(args.positional[1], &first_dim);

    Matrix<float> a_mtx, b_dense;
    KernelRequest req;
    if (synthetic) {
        if (args.positional.size() != 4) {
            std::fprintf(stderr,
                         "usage: dstc_sim spmm M N K --a-sparsity S "
                         "[flags]\n");
            return 2;
        }
        int64_t n = 0, k = 0;
        if (!parseDimArg(args.positional[2], &n) ||
            !parseDimArg(args.positional[3], &k)) {
            std::fprintf(stderr, "error: dimensions must be positive "
                                 "integers\n");
            return 2;
        }
        const double sa = args.flagD("a-sparsity", 0.99);
        if (!checkSparsityFlag("a-sparsity", sa))
            return 2;
        const double cluster = args.flagD("cluster", 1.0);
        if (!checkClusterFlag("cluster", cluster))
            return 2;
        req = KernelRequest::spmm(first_dim, n, k, sa);
        req.a_cluster = cluster;
        std::printf("SpMM %lld x %lld x %lld, A sparsity %.4f "
                    "(synthetic)\n",
                    static_cast<long long>(first_dim),
                    static_cast<long long>(n),
                    static_cast<long long>(k), sa);
    } else {
        if (args.positional.size() > 3) {
            std::fprintf(stderr,
                         "usage: dstc_sim spmm <file.mtx> [N] "
                         "[flags]\n");
            return 2;
        }
        const std::string &path = args.positional[1];
        std::string error;
        if (!loadMatrixMarket(path, &a_mtx, &error)) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return 2;
        }
        int64_t n = 32;
        if (args.positional.size() == 3 &&
            !parseDimArg(args.positional[2], &n)) {
            std::fprintf(stderr, "error: N must be a positive "
                                 "integer\n");
            return 2;
        }
        Rng rng(seed);
        b_dense = randomSparseMatrix(a_mtx.cols(),
                                     static_cast<int>(n), 0.0, rng);
        req = KernelRequest::spmm(a_mtx, b_dense);
        std::printf("SpMM %s: %d x %d, %d non-zeros (density %.4f%%)"
                    ", N = %lld\n",
                    path.c_str(), a_mtx.rows(), a_mtx.cols(),
                    a_mtx.nnz(),
                    100.0 * (1.0 - a_mtx.sparsity()),
                    static_cast<long long>(n));
    }
    req = req.withMethod(method)
              .withDataType(dtype)
              .withSpmmFormat(format)
              .withSeed(seed)
              .withHybridThreshold(
                  args.flagD("hybrid-threshold", -1.0));

    KernelReport report = session.run(req);
    printReport(report, session.config(), req.dataType());
    return 0;
}

int
runConv(const CliArgs &args, Session &session)
{
    if (!args.checkPositionals("conv", 1))
        return 2;
    if (!args.validateFlags("conv",
                         {"batch", "in-c", "hw", "out-c", "kernel",
                          "stride", "pad", "wsp", "asp", "method",
                          "seed", "cluster", "act-cluster",
                          "explicit"},
                         {"wsp", "asp", "cluster", "act-cluster"},
                         {"batch", "in-c", "hw", "out-c", "kernel",
                          "stride", "pad"},
                         {"seed"}, kGlobalFlags))
        return 2;
    ConvShape shape;
    shape.batch = args.flagI("batch", 1);
    shape.in_c = args.flagI("in-c", 0);
    shape.in_h = shape.in_w = args.flagI("hw", 0);
    shape.out_c = args.flagI("out-c", 0);
    shape.kernel = args.flagI("kernel", 3);
    shape.stride = args.flagI("stride", 1);
    shape.pad = args.flagI("pad", 1);
    if (shape.in_c <= 0 || shape.in_h <= 0 || shape.out_c <= 0) {
        std::fprintf(stderr, "usage: dstc_sim conv --in-c C --hw H "
                             "--out-c N [flags]\n");
        return 2;
    }
    if (shape.batch <= 0 || shape.kernel <= 0 || shape.stride <= 0 ||
        shape.pad < 0) {
        std::fprintf(stderr,
                     "error: --batch/--kernel/--stride must be "
                     "positive and --pad non-negative\n");
        return 2;
    }
    if (shape.outH() <= 0) {
        std::fprintf(stderr,
                     "error: convolution output collapses to zero\n");
        return 2;
    }

    Method method;
    if (!parseMethodFlag(args, "dual", {"auto", "dual", "dense", "zhu"},
                         &method))
        return 2;
    const bool explicit_lowering = args.hasFlag("explicit");
    if (explicit_lowering && method == Method::DualSparse) {
        std::fprintf(stderr, "error: the dual-side design has no "
                             "explicit-im2col variant\n");
        return 2;
    }

    const double wsp = args.flagD("wsp", 0.0);
    const double asp = args.flagD("asp", 0.0);
    if (!checkSparsityFlag("wsp", wsp) || !checkSparsityFlag("asp", asp))
        return 2;
    KernelRequest req = KernelRequest::conv(shape, wsp, asp);
    req.method = method;
    req.lowering = explicit_lowering ? Lowering::Explicit
                                     : Lowering::Implicit;
    req.seed = args.flagU64("seed", 1);
    req.b_cluster = args.flagD("cluster", 4.0);
    req.a_cluster = args.flagD("act-cluster", 2.0);
    if (!checkClusterFlag("cluster", req.b_cluster) ||
        !checkClusterFlag("act-cluster", req.a_cluster))
        return 2;

    KernelReport report = session.run(req);
    std::printf("CONV %s (%s)\n", shape.str().c_str(),
                methodName(report.method));
    printReport(report, session.config());
    return 0;
}

/** Parse a model-zoo name; prints the valid set on failure. */
bool
parseModelArg(const std::string &name, DnnModel *out)
{
    if (name == "vgg16")
        *out = makeVgg16();
    else if (name == "resnet18")
        *out = makeResnet18();
    else if (name == "maskrcnn")
        *out = makeMaskRcnn();
    else if (name == "bert")
        *out = makeBertBase();
    else if (name == "rnn")
        *out = makeRnnLM();
    else {
        std::fprintf(stderr,
                     "error: unknown model '%s' (valid: vgg16, "
                     "resnet18, maskrcnn, bert, rnn)\n",
                     name.c_str());
        return false;
    }
    return true;
}

/** Parse the model-granularity --method flag. */
bool
parseModelMethodArg(const std::string &token, ModelMethod *out)
{
    if (token == "dual")
        *out = ModelMethod::DualSparseImplicit;
    else if (token == "dense")
        *out = ModelMethod::DenseImplicit;
    else if (token == "single")
        *out = ModelMethod::SingleSparseImplicit;
    else if (token == "auto")
        *out = ModelMethod::Auto;
    else {
        std::fprintf(stderr,
                     "error: unknown method '%s' (valid: "
                     "auto|dual|dense|single)\n",
                     token.c_str());
        return false;
    }
    return true;
}

int
runModel(const CliArgs &args, Session &session)
{
    if (!args.checkPositionals("model", 2))
        return 2;
    if (!args.validateFlags("model",
                         {"method", "seed", "batched", "dtype"}, {},
                         {}, {"seed"}, kGlobalFlags))
        return 2;
    if (args.positional.size() < 2) {
        std::fprintf(stderr, "usage: dstc_sim model <name> [flags]\n");
        return 2;
    }
    DnnModel model;
    if (!parseModelArg(args.positional[1], &model))
        return 2;

    ModelMethod method;
    if (!parseModelMethodArg(args.flag("method", "dual"), &method))
        return 2;

    const uint64_t seed =
        args.flagU64("seed", 1);
    DataType dtype;
    if (!parseDataTypeFlag(args, &dtype))
        return 2;
    ModelRunner runner(session);
    ModelRunResult result =
        args.hasFlag("batched")
            ? runner.runBatched(model, method, seed, dtype)
            : runner.run(model, method, seed, dtype);
    // The comparison baseline runs at the same datatype, so the
    // speedup column isolates sparsity, not quantization.
    ModelRunResult dense =
        runner.run(model, ModelMethod::DenseImplicit, seed, dtype);

    const bool show_backend = method == ModelMethod::Auto;
    TextTable table;
    if (show_backend)
        table.setHeader(
            {"layer", "time (us)", "vs dense implicit", "backend"});
    else
        table.setHeader({"layer", "time (us)", "vs dense implicit"});
    for (size_t i = 0; i < result.layers.size(); ++i) {
        std::vector<std::string> row = {
            result.layers[i].name,
            fmtDouble(result.layers[i].stats.timeUs(), 2),
            fmtSpeedup(dense.layers[i].stats.timeUs() /
                       result.layers[i].stats.timeUs())};
        if (show_backend)
            row.push_back(result.layers[i].backend);
        table.addRow(row);
    }
    std::vector<std::string> total_row = {
        "FULL MODEL", fmtDouble(result.totalTimeUs(), 2),
        fmtSpeedup(dense.totalTimeUs() / result.totalTimeUs())};
    if (show_backend)
        total_row.push_back("");
    table.addRow(total_row);
    std::printf("%s under %s (%s)%s:\n", model.name.c_str(),
                modelMethodName(method), dataTypeToken(dtype),
                args.hasFlag("batched") ? " (batched)" : "");
    table.print();
    return 0;
}

/** Parse the comma-separated --devices list into GpuConfigs. */
bool
parseDevicesArg(const std::string &list,
                std::vector<GpuConfig> *configs,
                std::vector<std::string> *names)
{
    configs->clear();
    names->clear();
    size_t start = 0;
    while (start <= list.size()) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string token = list.substr(start, comma - start);
        if (token == "v100")
            configs->push_back(GpuConfig::v100());
        else if (token == "a100")
            configs->push_back(GpuConfig::a100Like());
        else if (token == "future")
            configs->push_back(GpuConfig::futureGpu());
        else {
            std::fprintf(stderr,
                         "error: unknown device '%s' (valid: v100, "
                         "a100, future)\n",
                         token.c_str());
            return false;
        }
        names->push_back(token);
        start = comma + 1;
    }
    return true;
}

int
runCluster(const CliArgs &args)
{
    if (!args.checkPositionals("cluster", 2))
        return 2;
    // No kGlobalFlags here: the cluster command takes its machine
    // list via --devices, so a stray --a100 must be rejected, not
    // silently ignored.
    if (!args.validateFlags("cluster",
                            {"devices", "policy", "method", "seed",
                             "replicate"},
                            {}, {"replicate"}, {"seed"}, {}))
        return 2;
    if (args.positional.size() < 2) {
        std::fprintf(stderr,
                     "usage: dstc_sim cluster <model> [--devices "
                     "v100,a100,future] [--policy cost|rr|shard] "
                     "[flags]\n");
        return 2;
    }
    DnnModel model;
    if (!parseModelArg(args.positional[1], &model))
        return 2;
    ModelMethod method;
    if (!parseModelMethodArg(args.flag("method", "dual"), &method))
        return 2;

    ClusterOptions opts;
    std::vector<std::string> device_names;
    if (!parseDevicesArg(args.flag("devices", "v100,v100"),
                         &opts.devices, &device_names))
        return 2;
    if (!parsePlacementPolicy(args.flag("policy", "cost"),
                              &opts.policy)) {
        std::fprintf(stderr, "error: unknown policy '%s' (valid: "
                             "cost|rr|shard)\n",
                     args.flag("policy", "cost").c_str());
        return 2;
    }
    const int replicate = args.flagI("replicate", 1);
    if (replicate < 1) {
        std::fprintf(stderr,
                     "error: --replicate must be positive\n");
        return 2;
    }
    const uint64_t seed = args.flagU64("seed", 1);

    Cluster cluster(opts);
    // The serving shape: the same model batch arriving over and over
    // (same seed per replica, so encodings and estimates dedup in
    // the shared cache).
    std::vector<KernelRequest> requests;
    const std::vector<KernelRequest> layer_batch =
        ModelRunner::layerRequests(model, method, seed);
    for (int rep = 0; rep < replicate; ++rep)
        requests.insert(requests.end(), layer_batch.begin(),
                        layer_batch.end());
    std::vector<KernelReport> reports =
        cluster.runBatch(std::move(requests));

    std::printf("%s x %d under %s on %zu devices, policy %s:\n",
                model.name.c_str(), replicate,
                modelMethodName(method), cluster.numDevices(),
                placementPolicyToken(opts.policy));

    const size_t layers = layer_batch.size();
    TextTable per_layer;
    per_layer.setHeader({"layer", "time (us)", "device", "backend"});
    for (size_t i = 0; i < layers; ++i)
        per_layer.addRow({reports[i].tag,
                          fmtDouble(reports[i].stats.timeUs(), 2),
                          std::to_string(reports[i].device),
                          reports[i].backend});
    per_layer.print();

    std::vector<double> device_us(cluster.numDevices(), 0.0);
    double total_us = 0.0;
    for (const KernelReport &report : reports) {
        device_us[report.device] += report.stats.timeUs();
        total_us += report.stats.timeUs();
    }
    std::printf("\nper-device load:\n");
    TextTable per_device;
    per_device.setHeader({"device", "config", "placed",
                          "est busy (us)", "sim time (us)"});
    double makespan_us = 0.0;
    for (size_t d = 0; d < cluster.numDevices(); ++d) {
        DeviceLoad load = cluster.load(d);
        per_device.addRow(
            {std::to_string(d), device_names[d],
             std::to_string(load.placed),
             fmtDouble(load.estimated_busy_us, 1),
             fmtDouble(device_us[d], 1)});
        makespan_us = std::max(makespan_us, device_us[d]);
    }
    per_device.print();
    std::printf("\nrequests          : %zu\n", reports.size());
    std::printf("sum of times      : %.1f us\n", total_us);
    std::printf("makespan (sim)    : %.1f us\n", makespan_us);
    std::printf("cluster speedup   : %.2fx vs serial same-placement\n",
                total_us / makespan_us);
    std::printf("throughput (sim)  : %.1f req/ms\n",
                reports.size() / (makespan_us / 1e3));
    return 0;
}

int
runServe(const CliArgs &args)
{
    if (!args.checkPositionals("serve", 2))
        return 2;
    // Like cluster: the device list comes from --devices, so the
    // global --a100 switch is rejected rather than ignored.
    if (!args.validateFlags("serve",
                            {"devices", "policy", "admission",
                             "pattern", "rate", "duration", "depth",
                             "microbatch", "method", "seed", "faults",
                             "fault-seed", "retry", "retry-budget",
                             "backoff", "hedge", "no-failover",
                             "no-degrade"},
                            {"rate", "duration", "backoff"},
                            {"depth", "microbatch", "retry-budget"},
                            {"seed", "fault-seed"}, {}))
        return 2;
    if (args.positional.size() < 2) {
        std::fprintf(stderr,
                     "usage: dstc_sim serve <model|mix> [--devices "
                     "v100,a100,future] [--policy deadline|cost|rr] "
                     "[--admission reject|shed] [--faults spec] "
                     "[--retry] [--hedge] [flags]\n");
        return 2;
    }

    ModelMethod method;
    if (!parseModelMethodArg(args.flag("method", "dual"), &method))
        return 2;
    const uint64_t seed = args.flagU64("seed", 1);

    // The workload pool: one model's layer batch, or the
    // heterogeneous resnet18+bert mix.
    std::vector<KernelRequest> pool;
    const std::string &pool_name = args.positional[1];
    if (pool_name == "mix") {
        for (const DnnModel &model : {makeResnet18(), makeBertBase()}) {
            const std::vector<KernelRequest> batch =
                ModelRunner::layerRequests(model, method, seed);
            pool.insert(pool.end(), batch.begin(), batch.end());
        }
    } else {
        DnnModel model;
        if (!parseModelArg(pool_name, &model))
            return 2;
        pool = ModelRunner::layerRequests(model, method, seed);
    }

    ServingOptions opts;
    std::vector<std::string> device_names;
    if (!parseDevicesArg(args.flag("devices", "v100,v100"),
                         &opts.devices, &device_names))
        return 2;

    const std::string policy = args.flag("policy", "deadline");
    const std::string admission = args.flag("admission", "reject");
    const std::string pattern = args.flag("pattern", "poisson");
    if (!checkChoiceFlag("policy", policy, {"deadline", "cost", "rr"}) ||
        !checkChoiceFlag("admission", admission, {"reject", "shed"}) ||
        !checkChoiceFlag("pattern", pattern, {"poisson", "bursty"}))
        return 2;
    parseServePolicy(policy, &opts.policy);
    parseAdmissionPolicy(admission, &opts.admission);
    parseTrafficPattern(pattern, &opts.arrivals.pattern);

    opts.arrivals.rate_rpms = args.flagD("rate", 400.0);
    opts.arrivals.duration_ms = args.flagD("duration", 2.0);
    opts.arrivals.seed = seed;
    const int depth = args.flagI("depth", 256);
    const int microbatch = args.flagI("microbatch", 4);
    if (!checkPositiveFlag("rate", opts.arrivals.rate_rpms) ||
        !checkPositiveFlag("duration", opts.arrivals.duration_ms) ||
        !checkPositiveFlag("depth", depth) ||
        !checkPositiveFlag("microbatch", microbatch))
        return 2;
    opts.queue_depth = static_cast<size_t>(depth);
    opts.microbatch = static_cast<size_t>(microbatch);

    // Fault injection and recovery policies. Malformed specs are a
    // usage error (exit 2) with the parser's own message — the same
    // contract as every other flag.
    const std::string fault_spec = args.flag("faults", "");
    if (!fault_spec.empty()) {
        std::string error;
        if (!FaultSpec::parse(fault_spec, &opts.faults, &error)) {
            std::fprintf(stderr, "serve: bad --faults spec: %s\n",
                         error.c_str());
            return 2;
        }
    }
    opts.fault_seed = args.flagU64("fault-seed", 0);
    opts.retry = args.hasFlag("retry");
    opts.hedge = args.hasFlag("hedge");
    opts.failover = !args.hasFlag("no-failover");
    opts.degrade = !args.hasFlag("no-degrade");
    const int retry_budget = args.flagI("retry-budget", 3);
    opts.retry_backoff_us = args.flagD("backoff", 10.0);
    if (!checkPositiveFlag("retry-budget", retry_budget) ||
        !checkPositiveFlag("backoff", opts.retry_backoff_us))
        return 2;
    opts.retry_budget = retry_budget;

    ServingEngine engine(opts, std::move(pool));
    const double capacity = engine.estimatedCapacityRpms();
    ServingResult result = engine.run();
    const ServingStats &stats = result.stats;

    std::printf("serve %s on %zu devices, policy %s, admission %s, "
                "%s @ %.0f req/ms for %.1f ms (seed %llu)\n",
                pool_name.c_str(), engine.cluster().numDevices(),
                policy.c_str(), admission.c_str(), pattern.c_str(),
                opts.arrivals.rate_rpms, opts.arrivals.duration_ms,
                static_cast<unsigned long long>(seed));
    std::printf("estimated capacity: %.0f req/ms (offered load "
                "%.2fx)\n\n",
                capacity, opts.arrivals.rate_rpms / capacity);

    TextTable per_class;
    per_class.setHeader({"class", "offered", "done", "missed",
                         "rejected", "shed", "p50 (us)", "p99 (us)"});
    for (int c = 0; c < kNumDeadlineClasses; ++c) {
        const ClassStats &cls = stats.per_class[c];
        per_class.addRow(
            {deadlineClassName(static_cast<DeadlineClass>(c)),
             std::to_string(cls.offered),
             std::to_string(cls.completed),
             std::to_string(cls.deadline_misses),
             std::to_string(cls.rejected), std::to_string(cls.shed),
             fmtDouble(cls.latency.p50_us, 2),
             fmtDouble(cls.latency.p99_us, 2)});
    }
    per_class.print();

    std::printf("\nper-device placement:\n");
    TextTable per_device;
    per_device.setHeader({"device", "config", "placed", "completed"});
    for (size_t d = 0; d < engine.cluster().numDevices(); ++d)
        per_device.addRow({std::to_string(d), device_names[d],
                           std::to_string(stats.placed_per_device[d]),
                           std::to_string(
                               stats.completed_per_device[d])});
    per_device.print();

    std::printf("\noffered / admitted : %lld / %lld\n",
                static_cast<long long>(stats.offered),
                static_cast<long long>(stats.admitted));
    std::printf("completed          : %lld (%lld rejected, %lld "
                "shed, %lld dropped, %lld lost)\n",
                static_cast<long long>(stats.completed),
                static_cast<long long>(stats.rejected),
                static_cast<long long>(stats.shed),
                static_cast<long long>(stats.dropped),
                static_cast<long long>(stats.faults.lost));
    std::printf("latency p50/p95/p99: %.2f / %.2f / %.2f us\n",
                stats.latency.p50_us, stats.latency.p95_us,
                stats.latency.p99_us);
    std::printf("deadline miss rate : %.3f\n",
                stats.deadline_miss_rate);
    std::printf("SLO attainment     : %.3f\n", stats.slo_attainment);
    std::printf("throughput         : %.1f req/ms\n",
                stats.throughput_rpms);
    std::printf("goodput            : %.1f req/ms\n",
                stats.goodput_rpms);
    std::printf("steals / batches   : %lld / %lld (%lld requests "
                "batched)\n",
                static_cast<long long>(stats.steals),
                static_cast<long long>(stats.microbatches),
                static_cast<long long>(stats.microbatched));

    if (!opts.faults.empty()) {
        const FaultRecoveryStats &fr = stats.faults;
        std::printf("\nfault/recovery scoreboard:\n");
        std::printf("crashes / slowdowns: %lld / %lld\n",
                    static_cast<long long>(fr.crashes),
                    static_cast<long long>(fr.slowdowns));
        std::printf("transient failures : %lld\n",
                    static_cast<long long>(fr.transient_failures));
        std::printf("retries            : %lld (%lld exhausted)\n",
                    static_cast<long long>(fr.retries),
                    static_cast<long long>(fr.retries_exhausted));
        std::printf("failovers          : %lld\n",
                    static_cast<long long>(fr.failovers));
        std::printf("hedges             : %lld (%lld secondary wins, "
                    "%lld cancelled)\n",
                    static_cast<long long>(fr.hedges),
                    static_cast<long long>(fr.hedge_wins),
                    static_cast<long long>(fr.hedges_cancelled));
        std::printf("requests lost      : %lld\n",
                    static_cast<long long>(fr.lost));
        std::printf("availability       : %.4f\n", fr.availability);
    }
    return 0;
}

/**
 * `backends --mtx <file>`: the real-matrix probe. Prints the strip
 * density histogram and the narrow-vs-32-wide structure view the
 * SpMM format selection runs on, then each format's cost-model
 * estimate and the dual plan's choice.
 */
int
probeMtx(const std::string &path, int64_t n, Session &session)
{
    Matrix<float> a;
    std::string error;
    if (!loadMatrixMarket(path, &a, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
    }
    const SparsityProfile a8 = SparsityProfile::fromMatrixAWord(a, 8);
    const SparsityProfile a32 = aggregateSpmmProfile(a8);
    const int64_t k = a8.k();
    std::printf("%s: %d x %d, %d non-zeros (density %.4f%%)\n",
                path.c_str(), a.rows(), a.cols(), a.nnz(),
                100.0 * (1.0 - a.sparsity()));

    // Strip (8-row group) density histogram, log-scale buckets: at
    // corpus sparsities a linear histogram collapses into one bin.
    const double edges[] = {0.0, 0.001, 0.005, 0.01, 0.05, 0.25, 1.0};
    const char *labels[] = {"0%",       "(0, 0.1%]", "(0.1, 0.5%]",
                            "(0.5, 1%]", "(1, 5%]",   "(5, 25%]",
                            "> 25%"};
    int hist[7] = {0};
    for (int g = 0; g < a8.groups(); ++g) {
        const double d = a8.groupDensity(g);
        int bin = 0;
        if (d > 0.0) {
            bin = 6;
            for (int e = 1; e < 6; ++e)
                if (d <= edges[e]) {
                    bin = e;
                    break;
                }
        }
        ++hist[bin];
    }
    std::printf("\nstrip density histogram (%d strips of 8 rows):\n",
                a8.groups());
    for (int b = 0; b < 7; ++b)
        if (hist[b])
            std::printf("  %-12s: %6d strip%s\n", labels[b], hist[b],
                        hist[b] == 1 ? "" : "s");

    // Narrow structure: 8x1 vectors; wide structure: 32x32 tiles.
    int64_t vectors = 0, vector_nnz = 0;
    for (int g = 0; g < a8.groups(); ++g)
        for (int64_t kk = 0; kk < k; ++kk)
            if (a8.count(g, kk) > 0) {
                ++vectors;
                vector_nnz += a8.count(g, kk);
            }
    const int64_t total_vectors =
        static_cast<int64_t>(a8.groups()) * k;
    const int64_t tile_cols = (k + 31) / 32;
    int64_t tiles = 0, tile_nnz = 0;
    for (int g = 0; g < a32.groups(); ++g) {
        for (int64_t tj = 0; tj < tile_cols; ++tj) {
            int64_t nnz = 0;
            const int64_t k1 = std::min<int64_t>(k, (tj + 1) * 32);
            for (int64_t kk = tj * 32; kk < k1; ++kk)
                nnz += a32.count(g, kk);
            if (nnz > 0) {
                ++tiles;
                tile_nnz += nnz;
            }
        }
    }
    const int64_t total_tiles = a32.groups() * tile_cols;
    std::printf("\nformat structure:\n");
    std::printf("  narrow 8x1 vectors : %lld / %lld non-empty "
                "(%.2f%%), avg fill %.2f / 8\n",
                static_cast<long long>(vectors),
                static_cast<long long>(total_vectors),
                100.0 * vectors / total_vectors,
                vectors ? static_cast<double>(vector_nnz) / vectors
                        : 0.0);
    std::printf("  wide 32x32 tiles   : %lld / %lld non-empty "
                "(%.2f%%), avg fill %.1f / 1024\n",
                static_cast<long long>(tiles),
                static_cast<long long>(total_tiles),
                100.0 * tiles / total_tiles,
                tiles ? static_cast<double>(tile_nnz) / tiles : 0.0);

    SpmmDevice device(session.config());
    const KernelStats tn = device.timeNarrowFromProfile(a8, n);
    const KernelStats tw = device.timeWideFromProfile(a32, n);
    std::printf("\ncost model at N = %lld:\n",
                static_cast<long long>(n));
    std::printf("  narrow : %8.2f us (%s bound)\n", tn.timeUs(),
                tn.bound == Bound::Compute ? "compute" : "memory");
    std::printf("  wide   : %8.2f us (%s bound)\n", tw.timeUs(),
                tw.bound == Bound::Compute ? "compute" : "memory");
    std::printf("  chosen : %s (%.2fx vs the other)\n",
                tn.timeUs() <= tw.timeUs() ? "narrow" : "wide",
                std::max(tn.timeUs(), tw.timeUs()) /
                    std::min(tn.timeUs(), tw.timeUs()));
    return 0;
}

int
runBackends(const CliArgs &args, Session &session)
{
    // With no shape the command describes the static registry; with
    // `backends M N K [--a-sparsity ...]` it reports each backend's
    // applicability and cost-model estimate for that request, plus
    // the hybrid composer's partition preview. `--mtx <file>`
    // switches to the real-matrix SpMM probe instead.
    if (!args.checkPositionals("backends", 4) ||
        !args.validateFlags("backends",
                            {"a-sparsity", "b-sparsity", "cluster",
                             "seed", "hybrid-threshold", "mtx", "n"},
                            {"a-sparsity", "b-sparsity", "cluster",
                             "hybrid-threshold"},
                            {"n"}, {"seed"}, kGlobalFlags))
        return 2;
    const std::string mtx_path = args.flag("mtx", "");
    if (!mtx_path.empty()) {
        if (args.positional.size() != 1) {
            std::fprintf(stderr, "usage: dstc_sim backends --mtx "
                                 "<file.mtx> [--n N]\n");
            return 2;
        }
        const int n = args.flagI("n", 32);
        if (n <= 0) {
            std::fprintf(stderr,
                         "error: --n must be a positive integer\n");
            return 2;
        }
        return probeMtx(mtx_path, n, session);
    }
    if (args.positional.size() != 1 && args.positional.size() != 4) {
        std::fprintf(stderr,
                     "usage: dstc_sim backends [M N K] [flags]\n");
        return 2;
    }
    const bool probe_request = args.positional.size() == 4;

    KernelRequest gemm_probe = KernelRequest::gemm(64, 64, 64);
    if (probe_request) {
        int64_t dims[3];
        for (int i = 0; i < 3; ++i) {
            const std::string &token = args.positional[i + 1];
            char *end = nullptr;
            errno = 0;
            dims[i] = std::strtoll(token.c_str(), &end, 10);
            if (token.empty() ||
                end != token.c_str() + token.size() ||
                errno == ERANGE || dims[i] <= 0) {
                std::fprintf(stderr,
                             "error: dimension '%s' must be a "
                             "positive integer\n",
                             token.c_str());
                return 2;
            }
        }
        const double sa = args.flagD("a-sparsity", 0.0);
        const double sb = args.flagD("b-sparsity", 0.0);
        if (!checkSparsityFlag("a-sparsity", sa) ||
            !checkSparsityFlag("b-sparsity", sb))
            return 2;
        const double cluster = args.flagD("cluster", 1.0);
        if (!checkClusterFlag("cluster", cluster))
            return 2;
        gemm_probe = KernelRequest::gemm(dims[0], dims[1], dims[2],
                                         sa, sb);
        gemm_probe.a_cluster = sa > 0 ? cluster : 1.0;
        gemm_probe.b_cluster = sb > 0 ? cluster : 1.0;
        gemm_probe.seed = args.flagU64("seed", 1);
        gemm_probe.hybrid_options.threshold =
            args.flagD("hybrid-threshold", -1.0);
        std::printf("request: GEMM %lld x %lld x %lld, A sparsity "
                    "%.3f, B sparsity %.3f\n",
                    static_cast<long long>(dims[0]),
                    static_cast<long long>(dims[1]),
                    static_cast<long long>(dims[2]), sa, sb);
    }

    KernelRequest conv_probe;
    conv_probe.kind = KernelRequest::Kind::Conv;
    conv_probe.shape.in_c = 8;
    conv_probe.shape.in_h = conv_probe.shape.in_w = 8;
    conv_probe.shape.out_c = 8;

    TextTable table;
    table.setHeader({"backend", "method", "token", "gemm", "conv",
                     "exact gemm", "est (us)"});
    for (const auto &backend : session.registry().backends()) {
        const bool supports = backend->supports(gemm_probe);
        std::string estimate = "-";
        if (supports) {
            KernelRequest routed = gemm_probe;
            routed.method = backend->method();
            estimate = fmtDouble(
                session.plan(routed)->estimatedTimeUs(), 2);
        }
        table.addRow({backend->name(), methodName(backend->method()),
                      methodToken(backend->method()),
                      supports ? "yes" : "no",
                      backend->supports(conv_probe) ? "yes" : "no",
                      backend->exact(gemm_probe) ? "yes" : "no",
                      estimate});
    }
    table.print();

    if (probe_request) {
        KernelRequest hybrid_probe = gemm_probe;
        hybrid_probe.method = Method::Hybrid;
        PlanContext ctx;
        ctx.cfg = &session.config();
        ctx.cache = &session.encodingCache();
        ctx.registry = &session.registry();
        const HybridSplit split = planHybridSplit(hybrid_probe, ctx);
        std::printf("\nhybrid partition (threshold %s):\n",
                    split.threshold < 0.0
                        ? "none"
                        : fmtDouble(split.threshold, 3).c_str());
        for (const HybridClass &cls : split.classes)
            std::printf("  %-8s : %zu tile row group%s, est %.2f "
                        "us\n",
                        methodToken(cls.method), cls.groups.size(),
                        cls.groups.size() == 1 ? "" : "s",
                        cls.estimated_us);
        std::printf("  total est : %.2f us\n",
                    split.total_estimated_us);
    }
    return 0;
}

int
runOverhead(const CliArgs &args, Session &session)
{
    if (!args.checkPositionals("overhead", 1) ||
        !args.validateFlags("overhead", {"dtype"}, {}, {}, {},
                            kGlobalFlags))
        return 2;
    DataType dtype;
    if (!parseDataTypeFlag(args, &dtype))
        return 2;
    OverheadReport report = estimateOverhead(session.config(), dtype);
    TextTable table;
    table.setHeader({"module", "area (mm^2)", "power (W)"});
    for (const auto &component : report.components)
        table.addRow({component.name, fmtDouble(component.area_mm2, 3),
                      fmtDouble(component.power_w, 2)});
    table.addRow({"total", fmtDouble(report.totalAreaMm2(), 3),
                  fmtDouble(report.totalPowerW(), 2)});
    table.print();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Presence-only flags never consume a following token (else
    // `--batched bogus` would silently eat the stray argument and
    // `--a100 model ...` would eat the command).
    CliArgs args =
        parseCliArgs(argc, argv,
                     {"a100", "batched", "explicit", "retry", "hedge",
                      "no-failover", "no-degrade"});
    if (args.positional.empty()) {
        std::fprintf(stderr,
                     "usage: dstc_sim <gemm|spmm|conv|model|cluster|"
                     "serve|backends|overhead> [args] [--a100]\n");
        return 2;
    }

    const std::string &command = args.positional[0];
    if (command == "cluster")
        return runCluster(args); // multi-device: --devices, not --a100
    if (command == "serve")
        return runServe(args); // multi-device: --devices, not --a100
    Session session(args.hasFlag("a100") ? GpuConfig::a100Like()
                                         : GpuConfig::v100());
    if (command == "gemm")
        return runGemm(args, session);
    if (command == "spmm")
        return runSpmm(args, session);
    if (command == "conv")
        return runConv(args, session);
    if (command == "model")
        return runModel(args, session);
    if (command == "backends")
        return runBackends(args, session);
    if (command == "overhead")
        return runOverhead(args, session);
    std::fprintf(stderr,
                 "error: unknown command '%s' (valid: gemm, spmm, "
                 "conv, model, cluster, serve, backends, overhead)\n",
                 command.c_str());
    return 2;
}
